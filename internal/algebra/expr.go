// Package algebra implements the relational algebra used to map the
// logical layer onto the virtual physical schema (Section 5): expression
// trees over VPS relations, the paper's binding propagation rules, join
// ordering under binding constraints, and an evaluator that performs
// dependent joins (sideways information passing) so that VPS relations
// are only ever invoked with their mandatory attributes bound.
package algebra

import (
	"fmt"
	"strings"

	"webbase/internal/relation"
)

// Catalog resolves base relations: their schemas, their alternative
// binding sets (sets of mandatory attributes, one per handle), and their
// population given input bindings. The VPS registry and the logical layer
// both implement it, so algebra expressions compose across layers.
type Catalog interface {
	Schema(name string) (relation.Schema, error)
	Bindings(name string) ([]relation.AttrSet, error)
	Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error)
}

// CmpOp is a comparison operator in a selection condition.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "≠"
	case LT:
		return "<"
	case LE:
		return "≤"
	case GT:
		return ">"
	case GE:
		return "≥"
	default:
		return "?"
	}
}

// holds reports whether "a op b" is true.
func (op CmpOp) holds(a, b relation.Value) bool {
	c := a.Compare(b)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	default:
		return c >= 0
	}
}

// Expr is a relational algebra expression.
type Expr interface {
	// Schema computes the expression's output schema against the catalog.
	Schema(cat Catalog) (relation.Schema, error)
	fmt.Stringer
}

// Scan reads a base relation of the catalog.
type Scan struct{ Relation string }

// Schema implements Expr.
func (s *Scan) Schema(cat Catalog) (relation.Schema, error) { return cat.Schema(s.Relation) }

func (s *Scan) String() string { return s.Relation }

// Condition is one comparison, either attribute-to-constant or
// attribute-to-attribute.
type Condition struct {
	Attr  string
	Op    CmpOp
	Val   relation.Value // used when Attr2 is empty
	Attr2 string         // attribute-to-attribute comparison
}

// String renders the condition.
func (c Condition) String() string {
	if c.Attr2 != "" {
		return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Attr2)
	}
	return fmt.Sprintf("%s %s %v", c.Attr, c.Op, c.Val)
}

// Select filters its input by a condition (σ).
type Select struct {
	Input Expr
	Cond  Condition
}

// Schema implements Expr: selection preserves the schema, and the
// condition's attributes must exist.
func (s *Select) Schema(cat Catalog) (relation.Schema, error) {
	sch, err := s.Input.Schema(cat)
	if err != nil {
		return nil, err
	}
	if !sch.Has(s.Cond.Attr) {
		return nil, fmt.Errorf("algebra: σ condition attribute %q not in schema %v", s.Cond.Attr, sch)
	}
	if s.Cond.Attr2 != "" && !sch.Has(s.Cond.Attr2) {
		return nil, fmt.Errorf("algebra: σ condition attribute %q not in schema %v", s.Cond.Attr2, sch)
	}
	return sch, nil
}

func (s *Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.Cond, s.Input)
}

// Project keeps only the named attributes (π), removing duplicates.
type Project struct {
	Input Expr
	Attrs []string
}

// Schema implements Expr.
func (p *Project) Schema(cat Catalog) (relation.Schema, error) {
	sch, err := p.Input.Schema(cat)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(p.Attrs))
	for _, a := range p.Attrs {
		if !sch.Has(a) {
			return nil, fmt.Errorf("algebra: π attribute %q not in schema %v", a, sch)
		}
		if seen[a] {
			return nil, fmt.Errorf("algebra: π lists attribute %q twice", a)
		}
		seen[a] = true
	}
	return relation.NewSchema(p.Attrs...), nil
}

func (p *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs, ", "), p.Input)
}

// Join is the natural join (⋈) of its inputs.
type Join struct{ Left, Right Expr }

// Schema implements Expr.
func (j *Join) Schema(cat Catalog) (relation.Schema, error) {
	l, err := j.Left.Schema(cat)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Schema(cat)
	if err != nil {
		return nil, err
	}
	return l.Union(r), nil
}

func (j *Join) String() string { return fmt.Sprintf("(%s ⋈ %s)", j.Left, j.Right) }

// Union is set union (∪); inputs must share an attribute set.
type Union struct{ Left, Right Expr }

// Schema implements Expr.
func (u *Union) Schema(cat Catalog) (relation.Schema, error) {
	return sameSchema(cat, u.Left, u.Right, "∪")
}

func (u *Union) String() string { return fmt.Sprintf("(%s ∪ %s)", u.Left, u.Right) }

// RelaxedUnion is the paper's relaxed union (Section 5, footnote): where
// the strict union requires M1 ∪ M2 bound (both sides answer), the relaxed
// union accepts either side's binding separately — the user "is willing to
// accept only some available answers because she does not want or care to
// fill out all the required attributes". At evaluation, sides whose
// bindings cannot be satisfied are skipped.
type RelaxedUnion struct{ Left, Right Expr }

// Schema implements Expr.
func (u *RelaxedUnion) Schema(cat Catalog) (relation.Schema, error) {
	return sameSchema(cat, u.Left, u.Right, "∪ʳ")
}

func (u *RelaxedUnion) String() string { return fmt.Sprintf("(%s ∪ʳ %s)", u.Left, u.Right) }

// RelaxedUnionAll folds expressions into a relaxed-union chain.
func RelaxedUnionAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return nil
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &RelaxedUnion{Left: out, Right: e}
	}
	return out
}

// Diff is set difference (−); inputs must share an attribute set.
type Diff struct{ Left, Right Expr }

// Schema implements Expr.
func (d *Diff) Schema(cat Catalog) (relation.Schema, error) {
	return sameSchema(cat, d.Left, d.Right, "−")
}

func (d *Diff) String() string { return fmt.Sprintf("(%s − %s)", d.Left, d.Right) }

func sameSchema(cat Catalog, left, right Expr, op string) (relation.Schema, error) {
	l, err := left.Schema(cat)
	if err != nil {
		return nil, err
	}
	r, err := right.Schema(cat)
	if err != nil {
		return nil, err
	}
	if !l.EqualUnordered(r) {
		return nil, fmt.Errorf("algebra: %s over different schemas %v and %v", op, l, r)
	}
	return l, nil
}

// Rename renames attributes (ρ). It is how the logical layer smooths out
// naming differences between sites.
type Rename struct {
	Input   Expr
	Mapping map[string]string // old name → new name
}

// Schema implements Expr.
func (r *Rename) Schema(cat Catalog) (relation.Schema, error) {
	sch, err := r.Input.Schema(cat)
	if err != nil {
		return nil, err
	}
	out := make(relation.Schema, len(sch))
	for i, a := range sch {
		if n, ok := r.Mapping[a]; ok {
			out[i] = n
		} else {
			out[i] = a
		}
	}
	// Renaming must not create duplicates.
	seen := make(map[string]bool, len(out))
	for _, a := range out {
		if seen[a] {
			return nil, fmt.Errorf("algebra: ρ produces duplicate attribute %q", a)
		}
		seen[a] = true
	}
	return out, nil
}

func (r *Rename) String() string {
	pairs := make([]string, 0, len(r.Mapping))
	for o, n := range r.Mapping {
		pairs = append(pairs, o+"→"+n)
	}
	// Deterministic rendering.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j] < pairs[j-1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return fmt.Sprintf("ρ[%s](%s)", strings.Join(pairs, ", "), r.Input)
}

// JoinAll folds expressions into a left-deep join tree.
func JoinAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return nil
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &Join{Left: out, Right: e}
	}
	return out
}

// UnionAll folds expressions into a union chain.
func UnionAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return nil
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = &Union{Left: out, Right: e}
	}
	return out
}
