package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"webbase/internal/relation"
)

// freeCatalog returns carCatalog's data with no binding restrictions, so
// arbitrary rewritten expressions evaluate without access errors.
func freeCatalog() *MemCatalog {
	restricted := carCatalog()
	free := NewMemCatalog()
	for name, r := range restricted.rels {
		clone := relation.New(name, r.schema)
		for _, t := range r.data.Tuples() {
			if err := clone.Insert(t); err != nil {
				panic(err)
			}
		}
		free.Add(clone)
	}
	return free
}

func TestOptimizePushesSelectionBelowUnionAndJoin(t *testing.T) {
	cat := carCatalog()
	e := &Select{
		Input: &Join{
			Left:  &Union{Left: scan("ads"), Right: scan("ads2")},
			Right: scan("safety"),
		},
		Cond: eqCond("Make", "jaguar"),
	}
	opt := Optimize(e, cat)
	s := opt.String()
	// The selection must now sit on the scans inside the union, not on
	// top of the join.
	if strings.HasPrefix(s, "σ") {
		t.Errorf("selection not pushed: %s", s)
	}
	if strings.Count(s, "σ[Make = jaguar]") < 2 {
		t.Errorf("selection should reach both union branches: %s", s)
	}
	// Equivalence on the restricted catalog (the constant still reaches
	// the scans, so populate succeeds).
	want, err := Eval(e, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(opt, carCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameContents(t, want, got) {
		t.Errorf("optimize changed the answer:\n%s\nvs\n%s", want, got)
	}
}

func TestOptimizeSelectionStaysWhenSpanningJoin(t *testing.T) {
	cat := carCatalog()
	// Price < BBPrice spans both join sides: it must remain above.
	e := &Select{
		Input: &Select{
			Input: &Join{Left: scan("ads"), Right: scan("bluebook")},
			Cond:  Condition{Attr: "Price", Op: LT, Attr2: "BBPrice"},
		},
		Cond: eqCond("Make", "jaguar"),
	}
	opt := Optimize(e, cat)
	s := opt.String()
	if !strings.Contains(s, "σ[Price < BBPrice]") {
		t.Errorf("cross-side condition lost: %s", s)
	}
	// The equality must have moved below it (ordering rule) and into the
	// join branches.
	if strings.Index(s, "σ[Price < BBPrice]") > strings.Index(s, "σ[Make = jaguar]") {
		t.Errorf("eq selection should be innermost: %s", s)
	}
}

func TestOptimizeMergesProjections(t *testing.T) {
	cat := carCatalog()
	e := &Project{
		Input: &Project{Input: scan("ads"), Attrs: []string{"Make", "Model", "Price"}},
		Attrs: []string{"Make", "Price"},
	}
	opt := Optimize(e, cat)
	if strings.Count(opt.String(), "π") != 1 {
		t.Errorf("projections not merged: %s", opt)
	}
}

func TestOptimizePushesThroughProjectAndRename(t *testing.T) {
	cat := carCatalog()
	e := &Select{
		Input: &Project{Input: scan("ads"), Attrs: []string{"Make", "Price"}},
		Cond:  eqCond("Make", "ford"),
	}
	opt := Optimize(e, cat)
	if !strings.HasPrefix(opt.String(), "π") {
		t.Errorf("selection should slide below projection: %s", opt)
	}
	// σ on a renamed attribute stays above ρ (we do not rewrite names).
	e2 := &Select{
		Input: &Rename{Input: scan("safety"), Mapping: map[string]string{"Safety": "Rating"}},
		Cond:  eqCond("Rating", "good"),
	}
	opt2 := Optimize(e2, cat)
	if !strings.HasPrefix(opt2.String(), "σ") {
		t.Errorf("selection over rename should stay put: %s", opt2)
	}
}

func TestOptimizeDiffPushesLeft(t *testing.T) {
	cat := carCatalog()
	e := &Select{
		Input: &Diff{Left: scan("ads"), Right: scan("ads2")},
		Cond:  eqCond("Make", "ford"),
	}
	opt := Optimize(e, cat)
	s := opt.String()
	if !strings.HasPrefix(s, "(σ") {
		t.Errorf("selection should push into the left diff branch: %s", s)
	}
}

// randomExpr builds a random expression over the free catalog's relations.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		names := []string{"ads", "ads2", "bluebook", "safety"}
		return scan(names[r.Intn(len(names))])
	}
	switch r.Intn(5) {
	case 0:
		in := randomExpr(r, depth-1)
		makes := []string{"ford", "jaguar", "honda"}
		return &Select{Input: in, Cond: Condition{
			Attr: "Make", Op: EQ, Val: relation.String(makes[r.Intn(len(makes))])}}
	case 1:
		in := randomExpr(r, depth-1)
		return &Select{Input: in, Cond: Condition{
			Attr: "Make", Op: NE, Val: relation.String("honda")}}
	case 2:
		// Union requires equal schemas: ads ∪ ads2 under random selects.
		l := &Select{Input: scan("ads"), Cond: Condition{Attr: "Year", Op: GE, Val: relation.Int(1990 + int64(r.Intn(8)))}}
		var rexpr Expr = scan("ads2")
		if r.Intn(2) == 0 {
			rexpr = &Select{Input: rexpr, Cond: Condition{Attr: "Price", Op: LT, Val: relation.Int(int64(5000 + r.Intn(20000)))}}
		}
		return &Union{Left: l, Right: rexpr}
	case 3:
		return &Join{Left: randomExpr(r, depth-1), Right: scan("safety")}
	default:
		in := randomExpr(r, depth-1)
		return in
	}
}

// TestOptimizeEquivalenceProperty checks, over many random expressions,
// that Optimize preserves the computed relation exactly (on a catalog with
// no binding restrictions, so every shape evaluates).
func TestOptimizeEquivalenceProperty(t *testing.T) {
	cat := freeCatalog()
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(r, 3)
		if _, err := e.Schema(cat); err != nil {
			continue // random composition may be ill-typed; skip
		}
		want, err := Eval(e, cat, nil)
		if err != nil {
			t.Fatalf("trial %d: eval original: %v\n%s", trial, err, e)
		}
		opt := Optimize(e, cat)
		got, err := Eval(opt, cat, nil)
		if err != nil {
			t.Fatalf("trial %d: eval optimized: %v\n%s", trial, err, opt)
		}
		if !sameContents(t, want, got) {
			t.Fatalf("trial %d: not equivalent\noriginal:  %s\noptimized: %s\nwant:\n%s\ngot:\n%s",
				trial, e, opt, want, got)
		}
	}
}

// sameContents compares two relations as bags up to column order.
func sameContents(t *testing.T, a, b *relation.Relation) bool {
	t.Helper()
	if !a.Schema().EqualUnordered(b.Schema()) {
		return false
	}
	ad, err1 := a.Distinct().Diff(b.Distinct())
	bd, err2 := b.Distinct().Diff(a.Distinct())
	if err1 != nil || err2 != nil {
		return false
	}
	return ad.Len() == 0 && bd.Len() == 0 && a.Distinct().Len() == b.Distinct().Len()
}
