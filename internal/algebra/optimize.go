package algebra

import "webbase/internal/relation"

// Optimize rewrites an expression using the classical relational-algebra
// transformations the paper alludes to ("the entire query can be optimized
// using techniques that are akin to relational algebra transformations")
// but leaves undeveloped. The rewrites are:
//
//   - selection pushdown: σ moves below π and ρ, into both branches of
//     ∪/∪ʳ/−, and into whichever join branch contains the condition's
//     attributes — shrinking intermediate results and, on the Web,
//     letting equality constants reach site forms earlier;
//   - selection reordering: equality selections (cheap, often satisfiable
//     by site forms) are applied below comparisons;
//   - projection merging: π[X](π[Y](e)) → π[X](e).
//
// The result is equivalent to the input on every catalog (asserted by
// property tests); only the evaluation order changes.
func Optimize(e Expr, cat Catalog) Expr {
	// Iterate to a fixed point; each pass is cheap and the rule set
	// terminates (selections only move down, projections only merge).
	for i := 0; i < 16; i++ {
		rewritten, changed := rewrite(e, cat)
		e = rewritten
		if !changed {
			break
		}
	}
	return e
}

// rewrite performs one bottom-up pass.
func rewrite(e Expr, cat Catalog) (Expr, bool) {
	switch e := e.(type) {
	case *Scan:
		return e, false

	case *Select:
		in, changed := rewrite(e.Input, cat)
		out, pushed := pushSelect(&Select{Input: in, Cond: e.Cond}, cat)
		return out, changed || pushed

	case *Project:
		in, changed := rewrite(e.Input, cat)
		if inner, ok := in.(*Project); ok {
			// π[X](π[Y](e)) → π[X](e) — X ⊆ Y is guaranteed when the input
			// type-checked.
			return &Project{Input: inner.Input, Attrs: e.Attrs}, true
		}
		return &Project{Input: in, Attrs: e.Attrs}, changed

	case *Rename:
		in, changed := rewrite(e.Input, cat)
		return &Rename{Input: in, Mapping: e.Mapping}, changed

	case *Join:
		l, lc := rewrite(e.Left, cat)
		r, rc := rewrite(e.Right, cat)
		return &Join{Left: l, Right: r}, lc || rc

	case *Union:
		l, lc := rewrite(e.Left, cat)
		r, rc := rewrite(e.Right, cat)
		return &Union{Left: l, Right: r}, lc || rc

	case *RelaxedUnion:
		l, lc := rewrite(e.Left, cat)
		r, rc := rewrite(e.Right, cat)
		return &RelaxedUnion{Left: l, Right: r}, lc || rc

	case *Diff:
		l, lc := rewrite(e.Left, cat)
		r, rc := rewrite(e.Right, cat)
		return &Diff{Left: l, Right: r}, lc || rc

	default:
		return e, false
	}
}

// pushSelect moves one selection as far down as it can go.
func pushSelect(s *Select, cat Catalog) (Expr, bool) {
	cond := s.Cond
	switch in := s.Input.(type) {
	case *Select:
		// σ cascade ordering: equality-with-constant first (cheapest and
		// most useful to site forms).
		if isComparison(cond) && isConstEq(in.Cond) {
			return s, false // already ordered: eq below cmp
		}
		if isConstEq(cond) && isComparison(in.Cond) {
			inner, _ := pushSelect(&Select{Input: in.Input, Cond: cond}, cat)
			return &Select{Input: inner, Cond: in.Cond}, true
		}
		return s, false

	case *Project:
		// σ commutes with π when the condition's attributes survive the
		// projection — they do whenever the outer select type-checked, so
		// check before moving.
		if projectKeeps(in, cond) {
			pushed, _ := pushSelect(&Select{Input: in.Input, Cond: cond}, cat)
			return &Project{Input: pushed, Attrs: in.Attrs}, true
		}
		return s, false

	case *Union:
		l, _ := pushSelect(&Select{Input: in.Left, Cond: cond}, cat)
		r, _ := pushSelect(&Select{Input: in.Right, Cond: cond}, cat)
		return &Union{Left: l, Right: r}, true

	case *RelaxedUnion:
		l, _ := pushSelect(&Select{Input: in.Left, Cond: cond}, cat)
		r, _ := pushSelect(&Select{Input: in.Right, Cond: cond}, cat)
		return &RelaxedUnion{Left: l, Right: r}, true

	case *Diff:
		// σ(A − B) = σ(A) − B; pushing into B would be wrong for
		// conditions it filters differently... it is actually also sound
		// to push into B (removing B-tuples failing the condition removes
		// nothing that σ(A) keeps), but pushing only left is sufficient
		// and conservative.
		l, _ := pushSelect(&Select{Input: in.Left, Cond: cond}, cat)
		return &Diff{Left: l, Right: in.Right}, true

	case *Join:
		lSchema, err := in.Left.Schema(cat)
		if err != nil {
			return s, false
		}
		rSchema, err := in.Right.Schema(cat)
		if err != nil {
			return s, false
		}
		needs := condAttrs(cond)
		inLeft := schemaHasAll(lSchema, needs)
		inRight := schemaHasAll(rSchema, needs)
		switch {
		case inLeft && inRight && isConstEq(cond):
			// The attribute is shared: the natural join equates the two
			// sides, so the constant restriction holds on both — pushing
			// into both keeps the constant available to each side's
			// binding requirements (a one-sided push would strand the
			// sibling behind a dependent feed it may not be able to get).
			l, _ := pushSelect(&Select{Input: in.Left, Cond: cond}, cat)
			r, _ := pushSelect(&Select{Input: in.Right, Cond: cond}, cat)
			return &Join{Left: l, Right: r}, true
		case inLeft:
			l, _ := pushSelect(&Select{Input: in.Left, Cond: cond}, cat)
			return &Join{Left: l, Right: in.Right}, true
		case inRight:
			r, _ := pushSelect(&Select{Input: in.Right, Cond: cond}, cat)
			return &Join{Left: in.Left, Right: r}, true
		default:
			return s, false // spans both sides: stays above the join
		}

	default:
		return s, false
	}
}

func isConstEq(c Condition) bool    { return c.Op == EQ && c.Attr2 == "" }
func isComparison(c Condition) bool { return !isConstEq(c) }

func condAttrs(c Condition) []string {
	if c.Attr2 != "" {
		return []string{c.Attr, c.Attr2}
	}
	return []string{c.Attr}
}

func schemaHasAll(sch relation.Schema, attrs []string) bool {
	for _, a := range attrs {
		if !sch.Has(a) {
			return false
		}
	}
	return true
}

func projectKeeps(p *Project, c Condition) bool {
	kept := relation.NewSchema(p.Attrs...)
	return schemaHasAll(kept, condAttrs(c))
}
