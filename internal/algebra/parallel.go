package algebra

import (
	"context"
	"sync"
)

// Pool bounds the number of extra goroutines one query evaluation may
// spawn. The evaluator parallelizes union branches and dependent-join
// handle invocations; every parallel site carries the pool in its context
// (WithPool) and asks for a token per branch it wants to run concurrently.
// A branch that gets no token runs inline in the calling goroutine, so a
// pool of w tokens never exceeds w+1 concurrently evaluating goroutines
// and — because holders never block on token acquisition — can never
// deadlock, no matter how deeply parallel sites nest.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool allowing up to workers concurrent evaluation
// goroutines in total (the caller counts as one). workers <= 1 returns
// nil: the nil pool means strictly sequential evaluation, byte-identical
// to the historical single-threaded evaluator.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// tryAcquire takes a token without blocking.
func (p *Pool) tryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *Pool) release() { <-p.sem }

type poolKey struct{}

// WithPool attaches the pool to the context; the evaluator and the UR
// layer pick it up from there. A nil pool is a no-op (sequential).
func WithPool(ctx context.Context, p *Pool) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom returns the pool attached to the context, or nil.
func PoolFrom(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolKey{}).(*Pool)
	return p
}

// ForEach runs fn(0..n-1), parallelizing with whatever pool the context
// carries, and returns the per-index errors. Results must be written by fn
// into caller-owned indexed slots, which keeps output ordering
// deterministic regardless of scheduling.
//
// Without a pool the tasks run in index order in the calling goroutine;
// stopEarly then reproduces the sequential evaluator's short-circuit (no
// task after the first failing one runs, their error slots stay nil). With
// a pool every task runs (siblings of a failing branch are not aborted)
// and the caller sees all errors — callers that need the sequential error
// surface take the lowest-index one.
//
// A context cancelled before a task starts records ctx.Err() in that
// task's slot instead of running it, which is what stops a cancelled
// query from issuing further fetches.
func ForEach(ctx context.Context, n int, stopEarly bool, fn func(i int) error) []error {
	errs := make([]error, n)
	pool := PoolFrom(ctx)
	if pool == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				if stopEarly {
					return errs
				}
				continue
			}
			errs[i] = fn(i)
			if errs[i] != nil && stopEarly {
				return errs
			}
		}
		return errs
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		// The last task always runs inline: the calling goroutine is
		// itself a worker, so burning a token on it would waste a slot.
		if i == n-1 || !pool.tryAcquire() {
			errs[i] = fn(i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer pool.release()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// firstError returns the lowest-index non-nil error — the error the
// sequential evaluator would have surfaced.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
