package algebra

import (
	"context"
	"errors"
	"sync"
	"testing"

	"webbase/internal/relation"
)

// parallelCtx returns a context carrying a pool wide enough that every
// union branch and dependent-join invocation the tests produce runs on
// its own goroutine.
func parallelCtx() context.Context {
	return WithPool(context.Background(), NewPool(8))
}

// TestParallelEvalMatchesSequential is the evaluator's golden test: with
// a pool attached, every expression must produce byte-identical output to
// the sequential evaluator — same tuples, same order.
func TestParallelEvalMatchesSequential(t *testing.T) {
	ford := map[string]relation.Value{"Make": relation.String("ford")}
	jaguar := map[string]relation.Value{"Make": relation.String("jaguar")}
	cases := []struct {
		name  string
		expr  Expr
		bound map[string]relation.Value
	}{
		{"union", &Union{Left: scan("ads"), Right: scan("ads2")}, ford},
		{"nested-union", UnionAll(scan("ads"), scan("ads2"), scan("ads")), jaguar},
		{"dependent-join", &Join{Left: scan("ads"), Right: scan("bluebook")}, ford},
		{"three-way-join", JoinAll(scan("bluebook"), scan("safety"), scan("ads")), ford},
		{"select-over-join", &Select{
			Input: &Join{Left: scan("ads"), Right: scan("bluebook")},
			Cond:  Condition{Attr: "Price", Op: LT, Attr2: "BBPrice"},
		}, jaguar},
		{"union-of-joins", &Union{
			Left:  &Join{Left: scan("ads"), Right: scan("bluebook")},
			Right: &Join{Left: scan("ads2"), Right: scan("bluebook")},
		}, ford},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seq, err := Eval(c.expr, carCatalog(), c.bound)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := EvalContext(parallelCtx(), c.expr, carCatalog(), c.bound)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if seq.String() != par.String() {
				t.Errorf("parallel result differs from sequential\nsequential:\n%s\nparallel:\n%s", seq, par)
			}
		})
	}
}

// TestParallelEvalSharedCatalog hammers one MemCatalog with parallel
// evaluations from many goroutines; under -race this verifies the whole
// eval path (pool, populate counting, slot merging) is data-race free.
func TestParallelEvalSharedCatalog(t *testing.T) {
	cat := carCatalog()
	expr := &Union{
		Left:  &Join{Left: scan("ads"), Right: scan("bluebook")},
		Right: &Join{Left: scan("ads2"), Right: scan("bluebook")},
	}
	want, err := Eval(expr, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, err := EvalContext(parallelCtx(), expr, cat,
					map[string]relation.Value{"Make": relation.String("ford")})
				if err != nil {
					t.Error(err)
					return
				}
				if got.String() != want.String() {
					t.Errorf("concurrent eval diverged:\n%s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cat.PopulateCount("bluebook") == 0 {
		t.Error("populate count not recorded")
	}
}

// TestParallelUnionErrorSurface pins the error semantics under the pool:
// when several branches fail, the leftmost branch's error is the one
// reported — the same error the sequential evaluator surfaces.
func TestParallelUnionErrorSurface(t *testing.T) {
	// ads without any binding fails with ErrBindingUnsatisfied; zips would
	// succeed. The union must report the left failure either way.
	expr := &Union{Left: scan("ads"), Right: scan("ads2")}
	for _, ctx := range []context.Context{context.Background(), parallelCtx()} {
		if _, err := EvalContext(ctx, expr, carCatalog(), nil); !errors.Is(err, ErrBindingUnsatisfied) {
			t.Errorf("err = %v, want ErrBindingUnsatisfied", err)
		}
	}
}

// TestParallelRelaxedUnionPartialAnswer checks the relaxed semantics
// survive parallel evaluation: a binding failure on one side yields the
// other side's partial answer, not an error.
func TestParallelRelaxedUnionPartialAnswer(t *testing.T) {
	expr := &RelaxedUnion{Left: scan("ads"), Right: scan("zipads")}
	cat := carCatalog()
	// zipads is reachable without bindings; ads needs Make.
	free := relation.New("zipads", relation.NewSchema("Make", "Model", "Year", "Price"))
	free.MustInsert(relation.String("honda"), relation.String("civic"), relation.Int(1997), relation.Int(9000))
	cat.Add(free)

	for _, ctx := range []context.Context{context.Background(), parallelCtx()} {
		rel, err := EvalContext(ctx, expr, cat, nil)
		if err != nil {
			t.Fatalf("relaxed union: %v", err)
		}
		if rel.Len() != 1 {
			t.Errorf("partial answer rows = %d, want 1 (zipads only)\n%s", rel.Len(), rel)
		}
	}
}

func TestEvalContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cat := carCatalog()
	_, err := EvalContext(ctx, scan("zips"), cat, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cat.PopulateCount("zips") != 0 {
		t.Error("cancelled eval still touched the catalog")
	}
}

// cancellingCatalog cancels the query context after a fixed number of
// Populate calls — simulating a user abort mid-navigation.
type cancellingCatalog struct {
	*MemCatalog
	cancel context.CancelFunc
	after  int
	mu     sync.Mutex
	count  int
}

func (c *cancellingCatalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	c.mu.Lock()
	c.count++
	n := c.count
	c.mu.Unlock()
	rel, err := c.MemCatalog.Populate(name, inputs)
	if n >= c.after {
		c.cancel()
	}
	return rel, err
}

func (c *cancellingCatalog) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// TestEvalCancellationStopsFurtherAccess cancels mid-union and asserts
// the evaluator stops touching the catalog: branches not yet started see
// ctx.Err() instead of running.
func TestEvalCancellationStopsFurtherAccess(t *testing.T) {
	mem := NewMemCatalog()
	for _, name := range []string{"r1", "r2", "r3", "r4", "r5", "r6"} {
		rel := relation.New(name, relation.NewSchema("A"))
		rel.MustInsert(relation.String(name))
		mem.Add(rel) // unrestricted
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cat := &cancellingCatalog{MemCatalog: mem, cancel: cancel, after: 2}

	expr := UnionAll(scan("r1"), scan("r2"), scan("r3"), scan("r4"), scan("r5"), scan("r6"))
	_, err := EvalContext(ctx, expr, cat, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := cat.Calls(); got >= 6 {
		t.Errorf("catalog touched %d times after cancellation, want < 6", got)
	}
}

// TestForEachPoolSemantics exercises the pool primitive directly: all
// tasks run exactly once, slots are written at their own index, and the
// pool never exceeds its width in extra goroutines.
func TestForEachPoolSemantics(t *testing.T) {
	const n = 50
	ctx := WithPool(context.Background(), NewPool(4))
	var mu sync.Mutex
	ran := make([]bool, n)
	errs := ForEach(ctx, n, false, func(i int) error {
		mu.Lock()
		defer mu.Unlock()
		if ran[i] {
			t.Errorf("task %d ran twice", i)
		}
		ran[i] = true
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("task %d: %v", i, err)
		}
		if !ran[i] {
			t.Errorf("task %d never ran", i)
		}
	}
}

// TestForEachSequentialShortCircuit pins the nil-pool contract: tasks run
// in index order and stopEarly prevents any task after the first failure.
func TestForEachSequentialShortCircuit(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	errs := ForEach(context.Background(), 5, true, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if len(ran) != 3 || ran[0] != 0 || ran[1] != 1 || ran[2] != 2 {
		t.Errorf("ran = %v, want [0 1 2]", ran)
	}
	if !errors.Is(errs[2], boom) || errs[3] != nil || errs[4] != nil {
		t.Errorf("errs = %v", errs)
	}
}
