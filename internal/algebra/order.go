package algebra

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"webbase/internal/relation"
)

// Operand is one join operand to be ordered: its schema and alternative
// binding sets.
type Operand struct {
	Name     string
	Schema   relation.Schema
	Bindings []relation.AttrSet
}

// executable reports whether the operand can run once the attributes in
// available are known.
func (o Operand) executable(available relation.AttrSet) bool {
	if len(o.Bindings) == 0 {
		return true // no binding constraint (e.g. a fully materialized input)
	}
	return Satisfiable(o.Bindings, available)
}

// ErrNoOrdering is returned when no execution ordering satisfies the
// binding constraints — the query cannot be answered because some
// mandatory form attribute can never be supplied. Section 5: "the
// existence of such an ordering is necessary and sufficient for a join to
// be computable under the given set of mandatory attributes."
var ErrNoOrdering = errors.New("algebra: no join ordering satisfies the binding constraints")

// GreedyOrder computes a join ordering under binding constraints: each
// round it appends every operand whose binding sets are satisfied by the
// initially bound attributes plus the schemas of operands already placed.
//
// Because availability only grows as operands are placed, placing an
// executable operand can never make another operand unorderable, so this
// greedy closure is *complete* for existence: if any valid ordering
// exists, GreedyOrder finds one (exchange argument: were greedy stuck
// while a valid ordering π existed, the first π-operand greedy has not
// placed would be executable, since everything before it in π is placed).
// The NP-completeness the paper cites [Rajaraman-Sagiv-Ullman] arises for
// *optimal* plan selection with multiple binding patterns, which
// MinCostOrder addresses.
func GreedyOrder(ops []Operand, bound relation.AttrSet) ([]int, error) {
	available := bound.Clone()
	placed := make([]bool, len(ops))
	order := make([]int, 0, len(ops))
	for len(order) < len(ops) {
		progress := false
		for i, op := range ops {
			if placed[i] || !op.executable(available) {
				continue
			}
			placed[i] = true
			order = append(order, i)
			available = available.Union(relation.SetFromSchema(op.Schema))
			progress = true
		}
		if !progress {
			return nil, orderError(ops, placed, available)
		}
	}
	return order, nil
}

// CostFunc estimates the cost of invoking an operand when the attributes
// in constants are bound by query constants and those in available are
// known (constants plus earlier operands' schemas).
type CostFunc func(op Operand, constants, available relation.AttrSet) float64

// DefaultCost charges 1 for an operand whose binding is covered by query
// constants alone (one site invocation) and fanoutPenalty for an operand
// that must be fed per-combination from join partners (one invocation per
// distinct combination — the dominant cost of dependent joins over the
// Web).
func DefaultCost(op Operand, constants, available relation.AttrSet) float64 {
	const fanoutPenalty = 25
	if len(op.Bindings) == 0 || Satisfiable(op.Bindings, constants) {
		return 1
	}
	return fanoutPenalty
}

// MinCostOrder searches every valid ordering (dynamic programming over
// operand subsets, O(2ⁿ·n²)) and returns one minimizing the summed cost.
// It is the exhaustive planner the ablation benchmarks contrast with
// GreedyOrder: same answers, exponentially more planning work, better
// orders when cost varies. A nil cost uses DefaultCost.
func MinCostOrder(ops []Operand, bound relation.AttrSet, cost CostFunc) ([]int, error) {
	if cost == nil {
		cost = DefaultCost
	}
	n := len(ops)
	if n == 0 {
		return nil, nil
	}
	if n > 20 {
		return nil, fmt.Errorf("algebra: too many join operands for exhaustive ordering (%d)", n)
	}
	// availFor caches the available set for each placed-subset mask.
	avail := make([]relation.AttrSet, 1<<uint(n))
	avail[0] = bound.Clone()
	type cell struct {
		cost float64
		prev int // previous mask
		last int // operand appended to reach this mask
	}
	best := make([]cell, 1<<uint(n))
	for i := range best {
		best[i] = cell{cost: math.Inf(1), prev: -1, last: -1}
	}
	best[0].cost = 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		if math.IsInf(best[mask].cost, 1) {
			continue
		}
		if avail[mask] == nil {
			// Reconstruct lazily from the predecessor.
			avail[mask] = avail[best[mask].prev].Union(relation.SetFromSchema(ops[best[mask].last].Schema))
		}
		// Position weight: an expensive operand placed early feeds its
		// (large) intermediate result into every later dependent join, so
		// its cost is multiplied by the number of operands still to come.
		weight := float64(n - popcount(mask))
		for i := 0; i < n; i++ {
			bit := 1 << uint(i)
			if mask&bit != 0 || !ops[i].executable(avail[mask]) {
				continue
			}
			next := mask | bit
			c := best[mask].cost + weight*cost(ops[i], bound, avail[mask])
			if c < best[next].cost {
				best[next] = cell{cost: c, prev: mask, last: i}
			}
		}
	}
	full := 1<<uint(n) - 1
	if math.IsInf(best[full].cost, 1) {
		placed := make([]bool, n)
		return nil, orderError(ops, placed, bound)
	}
	order := make([]int, 0, n)
	for mask := full; mask != 0; mask = best[mask].prev {
		order = append(order, best[mask].last)
	}
	// Reverse into execution order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

func popcount(mask int) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

func orderError(ops []Operand, placed []bool, available relation.AttrSet) error {
	var stuck []string
	for i, op := range ops {
		if !placed[i] {
			stuck = append(stuck, fmt.Sprintf("%s needs %s", op.Name, bindingAlternatives(op.Bindings)))
		}
	}
	return fmt.Errorf("%w: available %s; %s", ErrNoOrdering, available, strings.Join(stuck, "; "))
}

func bindingAlternatives(bs []relation.AttrSet) string {
	if len(bs) == 0 {
		return "{}"
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.String()
	}
	return strings.Join(parts, " or ")
}
