package algebra

import (
	"fmt"
	"sort"

	"webbase/internal/relation"
)

// Bindings statically determines all allowed binding sets (sets of
// mandatory attributes) for the expression, per the Section 5 rules:
//
//   - E = V, a VPS relation: V's own binding sets (one per handle).
//   - E = σ(E1) or π_X(E1) or δ(E1): the bindings of E1 pass through.
//   - E = E1 ∪ E2 or E1 − E2: M1 ∪ M2 for every M1 of E1 and M2 of E2.
//   - E = E1 ⋈ E2: both M1 ∪ (M2 − attrs(E1)) and M2 ∪ (M1 − attrs(E2))
//     for every pair — the join can be seeded from either side, with the
//     other side's mandatory attributes fed from the join.
//
// As an extension beyond the paper's rules, a ρ rename rewrites binding
// attribute names, and the final set is minimized: any binding set that is
// a superset of another is dropped, since the smaller set already grants
// access.
func Bindings(e Expr, cat Catalog) ([]relation.AttrSet, error) {
	bs, err := bindings(e, cat)
	if err != nil {
		return nil, err
	}
	return Minimize(bs), nil
}

func bindings(e Expr, cat Catalog) ([]relation.AttrSet, error) {
	switch e := e.(type) {
	case *Scan:
		return cat.Bindings(e.Relation)
	case *Select:
		in, err := bindings(e.Input, cat)
		if err != nil {
			return nil, err
		}
		// Extension beyond the paper's pass-through rule: an equality
		// selection with a constant discharges its attribute — the
		// constant itself supplies the binding (σ[Make=ford](newsday) is
		// invocable with nothing further bound).
		if e.Cond.Op == EQ && e.Cond.Attr2 == "" {
			out := make([]relation.AttrSet, len(in))
			for i, m := range in {
				out[i] = m.Minus(relation.NewAttrSet(e.Cond.Attr))
			}
			return out, nil
		}
		return in, nil
	case *Project:
		return bindings(e.Input, cat)
	case *Rename:
		in, err := bindings(e.Input, cat)
		if err != nil {
			return nil, err
		}
		out := make([]relation.AttrSet, len(in))
		for i, m := range in {
			nm := relation.NewAttrSet()
			for a := range m {
				if n, ok := e.Mapping[a]; ok {
					nm.Add(n)
				} else {
					nm.Add(a)
				}
			}
			out[i] = nm
		}
		return out, nil
	case *Union:
		return crossUnion(e.Left, e.Right, cat)
	case *Diff:
		return crossUnion(e.Left, e.Right, cat)
	case *RelaxedUnion:
		// Either side's binding grants (partial) access.
		l, err := bindings(e.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := bindings(e.Right, cat)
		if err != nil {
			return nil, err
		}
		return append(append([]relation.AttrSet{}, l...), r...), nil
	case *Join:
		l, err := bindings(e.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := bindings(e.Right, cat)
		if err != nil {
			return nil, err
		}
		lSchema, err := e.Left.Schema(cat)
		if err != nil {
			return nil, err
		}
		rSchema, err := e.Right.Schema(cat)
		if err != nil {
			return nil, err
		}
		lSet := relation.SetFromSchema(lSchema)
		rSet := relation.SetFromSchema(rSchema)
		var out []relation.AttrSet
		for _, m1 := range l {
			for _, m2 := range r {
				out = append(out, m1.Union(m2.Minus(lSet)))
				out = append(out, m2.Union(m1.Minus(rSet)))
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("algebra: bindings over unknown expression %T", e)
	}
}

// crossUnion implements the ∪/− rule: every pairwise union of binding
// sets.
func crossUnion(left, right Expr, cat Catalog) ([]relation.AttrSet, error) {
	l, err := bindings(left, cat)
	if err != nil {
		return nil, err
	}
	r, err := bindings(right, cat)
	if err != nil {
		return nil, err
	}
	var out []relation.AttrSet
	for _, m1 := range l {
		for _, m2 := range r {
			out = append(out, m1.Union(m2))
		}
	}
	return out, nil
}

// Minimize removes duplicate binding sets and any set that is a strict
// superset of another (the smaller set already suffices to invoke the
// expression).
func Minimize(bs []relation.AttrSet) []relation.AttrSet {
	// Dedupe first, keeping a deterministic order (by size, then key).
	seen := make(map[string]bool, len(bs))
	var uniq []relation.AttrSet
	for _, b := range bs {
		if k := b.Key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, b)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i]) != len(uniq[j]) {
			return len(uniq[i]) < len(uniq[j])
		}
		return uniq[i].Key() < uniq[j].Key()
	})
	var out []relation.AttrSet
	for _, b := range uniq {
		dominated := false
		for _, kept := range out {
			if kept.SubsetOf(b) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, b)
		}
	}
	return out
}

// Satisfiable reports whether some binding set of the expression is
// covered by the available attributes.
func Satisfiable(bs []relation.AttrSet, available relation.AttrSet) bool {
	for _, b := range bs {
		if b.SubsetOf(available) {
			return true
		}
	}
	return false
}
