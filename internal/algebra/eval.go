package algebra

import (
	"errors"
	"fmt"

	"webbase/internal/relation"
)

// Eval evaluates the expression against the catalog. bound carries the
// attribute values already known to the evaluator — the constants of
// enclosing equality selections and, inside dependent joins, values taken
// from join partners. Base relations are populated through the catalog
// with exactly those bindings, which is what lets VPS relations (only
// accessible with mandatory attributes bound) be evaluated at all.
func Eval(e Expr, cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {
	if bound == nil {
		bound = map[string]relation.Value{}
	}
	switch e := e.(type) {
	case *Scan:
		sch, err := cat.Schema(e.Relation)
		if err != nil {
			return nil, err
		}
		inputs := make(map[string]relation.Value)
		for a, v := range bound {
			if sch.Has(a) && !v.IsNull() {
				inputs[a] = v
			}
		}
		return cat.Populate(e.Relation, inputs)

	case *Select:
		sub := bound
		if e.Cond.Op == EQ && e.Cond.Attr2 == "" {
			// Push the constant down: it may satisfy a mandatory attribute
			// of a VPS relation underneath.
			sub = cloneBound(bound)
			sub[e.Cond.Attr] = e.Cond.Val
		}
		in, err := Eval(e.Input, cat, sub)
		if err != nil {
			return nil, err
		}
		sch := in.Schema()
		i := sch.IndexOf(e.Cond.Attr)
		if i < 0 {
			return nil, fmt.Errorf("algebra: σ attribute %q not in schema %v", e.Cond.Attr, sch)
		}
		j := -1
		if e.Cond.Attr2 != "" {
			if j = sch.IndexOf(e.Cond.Attr2); j < 0 {
				return nil, fmt.Errorf("algebra: σ attribute %q not in schema %v", e.Cond.Attr2, sch)
			}
		}
		return in.Select(func(t relation.Tuple) bool {
			rhs := e.Cond.Val
			if j >= 0 {
				rhs = t[j]
			}
			return e.Cond.Op.holds(t[i], rhs)
		}), nil

	case *Project:
		in, err := Eval(e.Input, cat, bound)
		if err != nil {
			return nil, err
		}
		return in.Project(e.Attrs...)

	case *Rename:
		// Bound values arrive under the new names; the subtree knows the
		// old ones.
		reverse := make(map[string]string, len(e.Mapping))
		for o, n := range e.Mapping {
			reverse[n] = o
		}
		sub := make(map[string]relation.Value, len(bound))
		for a, v := range bound {
			if o, ok := reverse[a]; ok {
				sub[o] = v
			} else {
				sub[a] = v
			}
		}
		in, err := Eval(e.Input, cat, sub)
		if err != nil {
			return nil, err
		}
		return in.Rename(in.Name(), e.Mapping), nil

	case *Union:
		l, err := Eval(e.Left, cat, bound)
		if err != nil {
			return nil, err
		}
		r, err := Eval(e.Right, cat, bound)
		if err != nil {
			return nil, err
		}
		return l.Union(r)

	case *RelaxedUnion:
		sch, err := e.Schema(cat)
		if err != nil {
			return nil, err
		}
		l, lerr := Eval(e.Left, cat, bound)
		r, rerr := Eval(e.Right, cat, bound)
		switch {
		case lerr == nil && rerr == nil:
			return l.Union(r)
		case lerr == nil && bindingFailure(rerr):
			return l, nil
		case rerr == nil && bindingFailure(lerr):
			return r, nil
		case bindingFailure(lerr) && bindingFailure(rerr):
			// Neither side reachable with these bindings: empty partial
			// answer rather than an error — the relaxed semantics.
			return relation.New("", sch), nil
		case lerr != nil:
			return nil, lerr
		default:
			return nil, rerr
		}

	case *Diff:
		l, err := Eval(e.Left, cat, bound)
		if err != nil {
			return nil, err
		}
		r, err := Eval(e.Right, cat, bound)
		if err != nil {
			return nil, err
		}
		return l.Diff(r)

	case *Join:
		return evalJoin(e, cat, bound)

	default:
		return nil, fmt.Errorf("algebra: eval of unknown expression %T", e)
	}
}

// evalJoin flattens the join tree, orders the operands under the binding
// constraints (greedy first, exhaustive as fallback), and evaluates them
// as a chain of dependent joins: each operand is populated once per
// distinct combination of join-attribute values in the accumulated result,
// those values serving as its inputs.
func evalJoin(j *Join, cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {
	exprs := flattenJoin(j)
	ops := make([]Operand, len(exprs))
	for i, e := range exprs {
		sch, err := e.Schema(cat)
		if err != nil {
			return nil, err
		}
		bs, err := Bindings(e, cat)
		if err != nil {
			return nil, err
		}
		ops[i] = Operand{Name: e.String(), Schema: sch, Bindings: bs}
	}
	boundSet := relation.NewAttrSet()
	for a, v := range bound {
		if !v.IsNull() {
			boundSet.Add(a)
		}
	}
	// Small joins afford the exhaustive min-cost planner (operands fed by
	// query constants run before operands needing dependent feeding);
	// larger joins fall back to the complete greedy closure.
	var (
		order []int
		err   error
	)
	if len(ops) <= 8 {
		order, err = MinCostOrder(ops, boundSet, nil)
	} else {
		order, err = GreedyOrder(ops, boundSet)
	}
	if err != nil {
		return nil, err
	}

	acc, err := Eval(exprs[order[0]], cat, bound)
	if err != nil {
		return nil, err
	}
	for _, idx := range order[1:] {
		acc, err = dependentJoin(acc, exprs[idx], ops[idx].Schema, cat, bound)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// dependentJoin evaluates next once per distinct combination of shared
// attributes in acc (sideways information passing) and joins the union of
// the per-combination results with acc.
func dependentJoin(acc *relation.Relation, next Expr, nextSchema relation.Schema,
	cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {

	shared := nextSchema.Intersect(acc.Schema())
	if len(shared) == 0 {
		r, err := Eval(next, cat, bound)
		if err != nil {
			return nil, err
		}
		return acc.NaturalJoin(r), nil
	}
	combos, err := acc.Project(shared...)
	if err != nil {
		return nil, err
	}
	var merged *relation.Relation
	for _, combo := range combos.Tuples() {
		inputs := cloneBound(bound)
		skip := false
		for i, a := range shared {
			if combo[i].IsNull() {
				skip = true // cannot feed a null binding to a form
				break
			}
			inputs[a] = combo[i]
		}
		if skip {
			continue
		}
		part, err := Eval(next, cat, inputs)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = part
			continue
		}
		if merged, err = merged.Union(part); err != nil {
			return nil, err
		}
	}
	if merged == nil {
		// No usable combinations: the join is empty.
		return relation.New("", acc.Schema().Union(nextSchema)), nil
	}
	return acc.NaturalJoin(merged), nil
}

// bindingFailure reports whether err means "this subexpression cannot be
// accessed with the current bindings" (as opposed to a hard failure).
// Catalog adapters over the VPS translate their no-usable-handle errors
// into ErrBindingUnsatisfied so relaxed unions can skip the side.
func bindingFailure(err error) bool {
	return errors.Is(err, ErrBindingUnsatisfied) || errors.Is(err, ErrNoOrdering)
}

// flattenJoin returns the operand expressions of a maximal join subtree in
// left-to-right order.
func flattenJoin(e Expr) []Expr {
	if j, ok := e.(*Join); ok {
		return append(flattenJoin(j.Left), flattenJoin(j.Right)...)
	}
	return []Expr{e}
}

func cloneBound(bound map[string]relation.Value) map[string]relation.Value {
	out := make(map[string]relation.Value, len(bound))
	for a, v := range bound {
		out[a] = v
	}
	return out
}
