package algebra

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/trace"
	"webbase/internal/web"
)

// CatalogContext is optionally implemented by catalogs whose Populate can
// honor cancellation: catalogs over the VPS thread the context all the way
// into navigation execution, so a cancelled query stops fetching pages.
type CatalogContext interface {
	Catalog
	PopulateContext(ctx context.Context, name string, inputs map[string]relation.Value) (*relation.Relation, error)
}

// populate routes through PopulateContext when the catalog supports it.
func populate(ctx context.Context, cat Catalog, name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	if cc, ok := cat.(CatalogContext); ok {
		return cc.PopulateContext(ctx, name, inputs)
	}
	return cat.Populate(name, inputs)
}

// Eval evaluates the expression against the catalog. bound carries the
// attribute values already known to the evaluator — the constants of
// enclosing equality selections and, inside dependent joins, values taken
// from join partners. Base relations are populated through the catalog
// with exactly those bindings, which is what lets VPS relations (only
// accessible with mandatory attributes bound) be evaluated at all.
//
// Eval is the sequential entry point; EvalContext adds cancellation and
// (through the context's Pool) bounded parallel evaluation.
func Eval(e Expr, cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {
	return EvalContext(context.Background(), e, cat, bound)
}

// EvalContext is Eval with a context. Cancellation is checked before every
// base-relation access, so a cancelled query issues no further fetches and
// returns ctx.Err(). When the context carries a Pool (WithPool), union
// branches and dependent-join handle invocations evaluate concurrently,
// bounded by the pool; results are merged in expression order, so the
// answer is identical to the sequential one tuple for tuple. Errors keep
// the sequential surface: of several failing parallel branches, the
// leftmost branch's error is reported (sibling branches are not aborted
// mid-flight, but their results are discarded).
func EvalContext(ctx context.Context, e Expr, cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {
	return evalSpanned(ctx, trace.Start(ctx, trace.KindOp, opLabel(e)), e, cat, bound)
}

// opLabel names an operator span: the operator symbol plus its own
// arguments, without recursing into inputs (the tree shape carries those).
func opLabel(e Expr) string {
	switch e := e.(type) {
	case *Scan:
		return e.Relation
	case *Select:
		return "σ[" + e.Cond.String() + "]"
	case *Project:
		return "π[" + strings.Join(e.Attrs, ", ") + "]"
	case *Rename:
		pairs := make([]string, 0, len(e.Mapping))
		for o, n := range e.Mapping {
			pairs = append(pairs, o+"→"+n)
		}
		sortStrings(pairs)
		return "ρ[" + strings.Join(pairs, ", ") + "]"
	case *Union:
		return "∪"
	case *RelaxedUnion:
		return "∪ʳ"
	case *Diff:
		return "−"
	case *Join:
		return "⋈"
	default:
		return fmt.Sprintf("%T", e)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// opSpans pre-creates one operator span per branch of a parallel fan-out,
// in branch order, before any branch is dispatched — the discipline that
// keeps trace structure deterministic under parallel evaluation. Returns
// nil (all no-op spans) when the context carries no trace.
func opSpans(ctx context.Context, exprs []Expr) []*trace.Span {
	if trace.FromContext(ctx) == nil {
		return nil
	}
	sps := make([]*trace.Span, len(exprs))
	for i, e := range exprs {
		sps[i] = trace.Start(ctx, trace.KindOp, opLabel(e))
	}
	return sps
}

func spanAt(sps []*trace.Span, i int) *trace.Span {
	if sps == nil {
		return nil
	}
	return sps[i]
}

// evalSpanned evaluates e under an already-created span (possibly nil),
// recording the output cardinality and any error on it.
func evalSpanned(ctx context.Context, sp *trace.Span, e Expr, cat Catalog, bound map[string]relation.Value) (out *relation.Relation, err error) {
	if sp != nil {
		ctx = trace.ContextWith(ctx, sp)
		defer func() {
			if out != nil {
				sp.Set("tuples", int64(out.Len()))
			}
			sp.EndErr(err)
		}()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if bound == nil {
		bound = map[string]relation.Value{}
	}
	switch e := e.(type) {
	case *Scan:
		sch, err := cat.Schema(e.Relation)
		if err != nil {
			return nil, err
		}
		inputs := make(map[string]relation.Value)
		for a, v := range bound {
			if sch.Has(a) && !v.IsNull() {
				inputs[a] = v
			}
		}
		return populate(ctx, cat, e.Relation, inputs)

	case *Select:
		sub := bound
		if e.Cond.Op == EQ && e.Cond.Attr2 == "" {
			// Push the constant down: it may satisfy a mandatory attribute
			// of a VPS relation underneath.
			sub = cloneBound(bound)
			sub[e.Cond.Attr] = e.Cond.Val
		}
		in, err := EvalContext(ctx, e.Input, cat, sub)
		if err != nil {
			return nil, err
		}
		sch := in.Schema()
		i := sch.IndexOf(e.Cond.Attr)
		if i < 0 {
			return nil, fmt.Errorf("algebra: σ attribute %q not in schema %v", e.Cond.Attr, sch)
		}
		j := -1
		if e.Cond.Attr2 != "" {
			if j = sch.IndexOf(e.Cond.Attr2); j < 0 {
				return nil, fmt.Errorf("algebra: σ attribute %q not in schema %v", e.Cond.Attr2, sch)
			}
		}
		return in.Select(func(t relation.Tuple) bool {
			rhs := e.Cond.Val
			if j >= 0 {
				rhs = t[j]
			}
			return e.Cond.Op.holds(t[i], rhs)
		}), nil

	case *Project:
		in, err := EvalContext(ctx, e.Input, cat, bound)
		if err != nil {
			return nil, err
		}
		return in.Project(e.Attrs...)

	case *Rename:
		// Bound values arrive under the new names; the subtree knows the
		// old ones.
		reverse := make(map[string]string, len(e.Mapping))
		for o, n := range e.Mapping {
			reverse[n] = o
		}
		sub := make(map[string]relation.Value, len(bound))
		for a, v := range bound {
			if o, ok := reverse[a]; ok {
				sub[o] = v
			} else {
				sub[a] = v
			}
		}
		in, err := EvalContext(ctx, e.Input, cat, sub)
		if err != nil {
			return nil, err
		}
		return in.Rename(in.Name(), e.Mapping), nil

	case *Union:
		// Union chains evaluate as one flat fan-out rather than pairwise
		// recursion: every leaf re-tries token acquisition when its turn
		// comes, so tokens freed by fast branches are picked up by later
		// ones instead of the whole right spine running sequentially.
		leaves := flattenUnion(e)
		rels := make([]*relation.Relation, len(leaves))
		sps := opSpans(ctx, leaves)
		errs := ForEach(ctx, len(leaves), true, func(i int) error {
			rel, err := evalSpanned(ctx, spanAt(sps, i), leaves[i], cat, bound)
			rels[i] = rel
			return err
		})
		if err := firstError(errs); err != nil {
			return nil, err
		}
		acc := rels[0]
		var err error
		for _, r := range rels[1:] {
			if acc, err = acc.Union(r); err != nil {
				return nil, err
			}
		}
		return acc, nil

	case *RelaxedUnion:
		sch, err := e.Schema(cat)
		if err != nil {
			return nil, err
		}
		// Every branch always evaluates (no short-circuit): a binding
		// failure on one must not suppress the others' partial answers.
		// Like Union, chains flatten into one fan-out; the left-fold merge
		// in leaf order reproduces the pairwise result exactly.
		leaves := flattenRelaxedUnion(e)
		rels := make([]*relation.Relation, len(leaves))
		sps := opSpans(ctx, leaves)
		errs := ForEach(ctx, len(leaves), false, func(i int) error {
			rel, err := evalSpanned(ctx, spanAt(sps, i), leaves[i], cat, bound)
			rels[i] = rel
			return err
		})
		var acc *relation.Relation
		for i, lerr := range errs {
			switch {
			case lerr == nil:
				if acc == nil {
					acc = rels[i]
				} else if acc, err = acc.Union(rels[i]); err != nil {
					return nil, err
				}
			case bindingFailure(lerr):
				// This branch is unreachable with the current bindings:
				// drop it, keep the partial answer.
			default:
				return nil, lerr
			}
		}
		if acc == nil {
			// No branch reachable with these bindings: empty partial
			// answer rather than an error — the relaxed semantics.
			return relation.New("", sch), nil
		}
		return acc, nil

	case *Diff:
		l, err := EvalContext(ctx, e.Left, cat, bound)
		if err != nil {
			return nil, err
		}
		r, err := EvalContext(ctx, e.Right, cat, bound)
		if err != nil {
			return nil, err
		}
		return l.Diff(r)

	case *Join:
		return evalJoin(ctx, e, cat, bound)

	default:
		return nil, fmt.Errorf("algebra: eval of unknown expression %T", e)
	}
}

// flattenUnion returns the leaf expressions of a maximal ∪-subtree in
// left-to-right order. Union is associative and the evaluator's merge
// deduplicates in leaf order, so a left fold over the leaves equals the
// nested pairwise evaluation tuple for tuple.
func flattenUnion(e Expr) []Expr {
	if u, ok := e.(*Union); ok {
		return append(flattenUnion(u.Left), flattenUnion(u.Right)...)
	}
	return []Expr{e}
}

// flattenRelaxedUnion is flattenUnion for ∪ʳ-subtrees.
func flattenRelaxedUnion(e Expr) []Expr {
	if u, ok := e.(*RelaxedUnion); ok {
		return append(flattenRelaxedUnion(u.Left), flattenRelaxedUnion(u.Right)...)
	}
	return []Expr{e}
}

// evalJoin flattens the join tree, orders the operands under the binding
// constraints (greedy first, exhaustive as fallback), and evaluates them
// as a chain of dependent joins: each operand is populated once per
// distinct combination of join-attribute values in the accumulated result,
// those values serving as its inputs.
func evalJoin(ctx context.Context, j *Join, cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {
	exprs := flattenJoin(j)
	ops := make([]Operand, len(exprs))
	for i, e := range exprs {
		sch, err := e.Schema(cat)
		if err != nil {
			return nil, err
		}
		bs, err := Bindings(e, cat)
		if err != nil {
			return nil, err
		}
		ops[i] = Operand{Name: e.String(), Schema: sch, Bindings: bs}
	}
	boundSet := relation.NewAttrSet()
	for a, v := range bound {
		if !v.IsNull() {
			boundSet.Add(a)
		}
	}
	// Small joins afford the exhaustive min-cost planner (operands fed by
	// query constants run before operands needing dependent feeding);
	// larger joins fall back to the complete greedy closure.
	var (
		order []int
		err   error
	)
	if len(ops) <= 8 {
		order, err = MinCostOrder(ops, boundSet, nil)
	} else {
		order, err = GreedyOrder(ops, boundSet)
	}
	if err != nil {
		return nil, err
	}

	acc, err := EvalContext(ctx, exprs[order[0]], cat, bound)
	if err != nil {
		return nil, err
	}
	for _, idx := range order[1:] {
		acc, err = dependentJoin(ctx, acc, exprs[idx], ops[idx].Schema, cat, bound)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// dependentJoin evaluates next once per distinct combination of shared
// attributes in acc (sideways information passing) and joins the union of
// the per-combination results with acc. The per-combination invocations
// are independent handle calls, so they run in parallel when the context
// carries a pool; the partial results are merged in combination order,
// keeping the output deterministic.
func dependentJoin(ctx context.Context, acc *relation.Relation, next Expr, nextSchema relation.Schema,
	cat Catalog, bound map[string]relation.Value) (*relation.Relation, error) {

	shared := nextSchema.Intersect(acc.Schema())
	if len(shared) == 0 {
		r, err := EvalContext(ctx, next, cat, bound)
		if err != nil {
			return nil, err
		}
		return acc.NaturalJoin(r), nil
	}
	combos, err := acc.Project(shared...)
	if err != nil {
		return nil, err
	}
	tuples := combos.Tuples()
	parts := make([]*relation.Relation, len(tuples))
	// Runtime access relevance, dependent-join form: a feed tuple whose
	// bound attributes already violate the query's WHERE clause cannot
	// extend to an answer tuple — every row it produces dies in a
	// selection above this join. A combination all of whose source tuples
	// are doomed is never invoked (its pre-created span records the
	// decision instead); combinations with at least one live source tuple
	// still invoke, and any doomed rows they produce are filtered by the
	// selections exactly as without pruning, so the join output is
	// byte-identical. Leaf populates post-filter their results onto the
	// fed inputs, so a part tuple always carries its combination's values.
	var prunedCombo []bool
	if st := prune.FromContext(ctx); st != nil && len(tuples) > 0 {
		accSch := acc.Schema()
		live := acc.Select(func(t relation.Tuple) bool { return !st.IrrelevantTuple(accSch, t) })
		if live.Len() != acc.Len() {
			liveCombos, err := live.Project(shared...)
			if err != nil {
				return nil, err
			}
			liveKeys := make(map[string]struct{}, liveCombos.Len())
			for _, t := range liveCombos.Tuples() {
				liveKeys[t.Key()] = struct{}{}
			}
			prunedCombo = make([]bool, len(tuples))
			for i, t := range tuples {
				_, ok := liveKeys[t.Key()]
				prunedCombo[i] = !ok
			}
		}
	}
	// One invoke span per combination, pre-created in combination order
	// (tuple order is deterministic, so span order is too). All combinations
	// share one name; the rendered plan aggregates them into invocations=N.
	var sps []*trace.Span
	if trace.FromContext(ctx) != nil {
		name := "invoke {" + strings.Join(shared, ", ") + "} → " + opLabel(next)
		sps = make([]*trace.Span, len(tuples))
		for i := range tuples {
			sps[i] = trace.Start(ctx, trace.KindInvoke, name)
		}
	}
	errs := ForEach(ctx, len(tuples), true, func(i int) error {
		sp := spanAt(sps, i)
		ictx := ctx
		if sp != nil {
			ictx = trace.ContextWith(ctx, sp)
		}
		// Relevance pruning precedes the budget check: an irrelevant
		// invocation is free, so it must not consume a budget verdict (a
		// pruned-then-doomed invocation would otherwise surface as a
		// budget degradation the unpruned run never saw for free work).
		if prunedCombo != nil && prunedCombo[i] {
			prune.FromContext(ctx).Count(prune.ReasonUnsatWhere)
			sp.Set("pruned", 1)
			sp.Label("pruned-reason", prune.ReasonUnsatWhere)
			sp.End()
			return nil // every source tuple of this combination is doomed
		}
		// Deadline budget: an invocation is the unit of new work at this
		// layer; refuse to start one once the owning object's budget is
		// gone (work already invoked is allowed to finish).
		if web.BudgetFrom(ctx).Exhausted() {
			err := web.MarkOutage(fmt.Errorf("algebra: dependent-join invocation refused: %w",
				web.ErrBudgetExhausted))
			sp.Set("budget-exhausted", 1)
			sp.EndErr(err)
			return err
		}
		inputs := cloneBound(bound)
		for k, a := range shared {
			if tuples[i][k].IsNull() {
				sp.Set("skipped", 1)
				sp.End()
				return nil // cannot feed a null binding to a form; skip
			}
			inputs[a] = tuples[i][k]
		}
		part, err := EvalContext(ictx, next, cat, inputs)
		if err != nil {
			sp.EndErr(err)
			return err
		}
		parts[i] = part
		sp.Set("tuples", int64(part.Len()))
		sp.End()
		return nil
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	var merged *relation.Relation
	for _, part := range parts {
		if part == nil {
			continue // skipped null-binding combination
		}
		if merged == nil {
			merged = part
			continue
		}
		if merged, err = merged.Union(part); err != nil {
			return nil, err
		}
	}
	if merged == nil {
		// No usable combinations: the join is empty.
		return relation.New("", acc.Schema().Union(nextSchema)), nil
	}
	return acc.NaturalJoin(merged), nil
}

// bindingFailure reports whether err means "this subexpression cannot be
// accessed with the current bindings" (as opposed to a hard failure).
// Catalog adapters over the VPS translate their no-usable-handle errors
// into ErrBindingUnsatisfied so relaxed unions can skip the side.
func bindingFailure(err error) bool {
	return errors.Is(err, ErrBindingUnsatisfied) || errors.Is(err, ErrNoOrdering)
}

// flattenJoin returns the operand expressions of a maximal join subtree in
// left-to-right order.
func flattenJoin(e Expr) []Expr {
	if j, ok := e.(*Join); ok {
		return append(flattenJoin(j.Left), flattenJoin(j.Right)...)
	}
	return []Expr{e}
}

func cloneBound(bound map[string]relation.Value) map[string]relation.Value {
	out := make(map[string]relation.Value, len(bound))
	for a, v := range bound {
		out[a] = v
	}
	return out
}
