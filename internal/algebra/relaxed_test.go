package algebra

import (
	"strings"
	"testing"

	"webbase/internal/relation"
)

func TestRelaxedUnionSchemaAndString(t *testing.T) {
	cat := carCatalog()
	ru := &RelaxedUnion{Left: scan("ads"), Right: scan("ads2")}
	sch, err := ru.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !sch.Equal(relation.NewSchema("Make", "Model", "Year", "Price")) {
		t.Errorf("schema = %v", sch)
	}
	if !strings.Contains(ru.String(), "∪ʳ") {
		t.Errorf("rendering: %s", ru)
	}
	// Mismatched schemas rejected.
	bad := &RelaxedUnion{Left: scan("ads"), Right: scan("safety")}
	if _, err := bad.Schema(cat); err == nil {
		t.Error("schema mismatch accepted")
	}
	// Fold helper.
	if RelaxedUnionAll() != nil {
		t.Error("empty fold should be nil")
	}
	if got := RelaxedUnionAll(scan("a"), scan("b"), scan("c")).String(); got != "((a ∪ʳ b) ∪ʳ c)" {
		t.Errorf("fold = %q", got)
	}
}

func TestRelaxedUnionBindingsAreAlternatives(t *testing.T) {
	cat := NewMemCatalog()
	a := relation.New("a", relation.NewSchema("X", "Y"))
	a.MustInsert(relation.Int(1), relation.Int(10))
	cat.Add(a, relation.NewAttrSet("X"))
	b := relation.New("b", relation.NewSchema("X", "Y"))
	b.MustInsert(relation.Int(2), relation.Int(20))
	cat.Add(b, relation.NewAttrSet("Y"))

	ru := &RelaxedUnion{Left: &Scan{Relation: "a"}, Right: &Scan{Relation: "b"}}
	bs, err := Bindings(ru, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Alternatives, not the cross-union: {X} or {Y}.
	if len(bs) != 2 {
		t.Fatalf("bindings = %v", bs)
	}
	// Contrast: strict union requires both.
	u := &Union{Left: &Scan{Relation: "a"}, Right: &Scan{Relation: "b"}}
	ubs, err := Bindings(u, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(ubs) != 1 || !ubs[0].Equal(relation.NewAttrSet("X", "Y")) {
		t.Fatalf("strict union bindings = %v", ubs)
	}
}

func TestRelaxedUnionEvalSkipsUnboundSides(t *testing.T) {
	cat := NewMemCatalog()
	a := relation.New("a", relation.NewSchema("X", "Y"))
	a.MustInsert(relation.Int(1), relation.Int(10))
	cat.Add(a, relation.NewAttrSet("X"))
	b := relation.New("b", relation.NewSchema("X", "Y"))
	b.MustInsert(relation.Int(1), relation.Int(20))
	cat.Add(b, relation.NewAttrSet("Y"))

	ru := &RelaxedUnion{Left: &Scan{Relation: "a"}, Right: &Scan{Relation: "b"}}

	// X bound: only a answers.
	rel, err := Eval(ru, cat, map[string]relation.Value{"X": relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("rows = %d, want 1 (b skipped)", rel.Len())
	}
	// Both bound: both answer.
	rel, err = Eval(ru, cat, map[string]relation.Value{
		"X": relation.Int(1), "Y": relation.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 { // b's row has Y=20, filtered out by inputs
		t.Errorf("rows = %d", rel.Len())
	}
	// Nothing bound: both skipped → empty relation, not an error.
	rel, err = Eval(ru, cat, nil)
	if err != nil {
		t.Fatalf("relaxed union with no sides should be empty, got %v", err)
	}
	if rel.Len() != 0 {
		t.Errorf("rows = %d, want 0", rel.Len())
	}
}

func TestEvalUnknownExprAndSchemaErrors(t *testing.T) {
	cat := carCatalog()
	// σ over a vanished attribute after projection: schema error at eval.
	e := &Select{
		Input: &Project{Input: scan("ads"), Attrs: []string{"Make"}},
		Cond:  Condition{Attr: "Price", Op: LT, Val: relation.Int(5)},
	}
	if _, err := Eval(e, cat, map[string]relation.Value{"Make": relation.String("ford")}); err == nil {
		t.Error("expected schema error")
	}
	// Rename evaluation after binding through new name.
	r := &Rename{Input: scan("ads"), Mapping: map[string]string{"Price": "Cost"}}
	rel, err := Eval(r, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Schema().Has("Cost") {
		t.Errorf("schema = %v", rel.Schema())
	}
	// PopulateCount of an unknown relation is 0.
	if cat.PopulateCount("ghost") != 0 {
		t.Error("ghost populate count")
	}
}

func TestBindingsErrorsPropagate(t *testing.T) {
	cat := carCatalog()
	bad := []Expr{
		&Select{Input: scan("ghost"), Cond: eqCond("A", "x")},
		&Project{Input: scan("ghost"), Attrs: []string{"A"}},
		&Rename{Input: scan("ghost"), Mapping: nil},
		&Union{Left: scan("ghost"), Right: scan("ads")},
		&Union{Left: scan("ads"), Right: scan("ghost")},
		&RelaxedUnion{Left: scan("ghost"), Right: scan("ads")},
		&RelaxedUnion{Left: scan("ads"), Right: scan("ghost")},
		&Join{Left: scan("ghost"), Right: scan("ads")},
		&Join{Left: scan("ads"), Right: scan("ghost")},
	}
	for _, e := range bad {
		if _, err := Bindings(e, cat); err == nil {
			t.Errorf("%T over ghost relation: expected error", e)
		}
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	cat := carCatalog()
	jag := relation.String("jaguar")
	bound := map[string]relation.Value{"Make": jag}
	bad := []Expr{
		scan("ghost"),
		&Project{Input: scan("ghost"), Attrs: []string{"A"}},
		&Union{Left: scan("ghost"), Right: scan("ads")},
		&Union{Left: scan("ads"), Right: scan("ghost")},
		&Diff{Left: scan("ghost"), Right: scan("ads")},
		&Diff{Left: scan("ads"), Right: scan("ghost")},
		&Rename{Input: scan("ghost"), Mapping: nil},
		&Join{Left: scan("ghost"), Right: scan("ads")},
	}
	for _, e := range bad {
		if _, err := Eval(e, cat, bound); err == nil {
			t.Errorf("%s: expected error", e)
		}
	}
}
