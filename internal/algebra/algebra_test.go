package algebra

import (
	"errors"
	"strings"
	"testing"

	"webbase/internal/relation"
)

// carCatalog builds an in-memory catalog mirroring the paper's used-car
// VPS: classifieds behind a Make binding, blue book behind
// {Make, Model, Condition}, safety behind {Make}.
func carCatalog() *MemCatalog {
	cat := NewMemCatalog()

	ads := relation.New("ads", relation.NewSchema("Make", "Model", "Year", "Price"))
	ads.MustInsert(relation.String("ford"), relation.String("escort"), relation.Int(1994), relation.Int(3000))
	ads.MustInsert(relation.String("ford"), relation.String("escort"), relation.Int(1996), relation.Int(5200))
	ads.MustInsert(relation.String("ford"), relation.String("taurus"), relation.Int(1995), relation.Int(6400))
	ads.MustInsert(relation.String("jaguar"), relation.String("xj6"), relation.Int(1994), relation.Int(16000))
	ads.MustInsert(relation.String("jaguar"), relation.String("xj6"), relation.Int(1996), relation.Int(24000))
	cat.Add(ads, relation.NewAttrSet("Make"))

	ads2 := relation.New("ads2", relation.NewSchema("Make", "Model", "Year", "Price"))
	ads2.MustInsert(relation.String("jaguar"), relation.String("xjs"), relation.Int(1995), relation.Int(21000))
	ads2.MustInsert(relation.String("ford"), relation.String("escort"), relation.Int(1994), relation.Int(3000)) // dup of ads row
	cat.Add(ads2, relation.NewAttrSet("Make"))

	bb := relation.New("bluebook", relation.NewSchema("Make", "Model", "Year", "BBPrice"))
	bb.MustInsert(relation.String("ford"), relation.String("escort"), relation.Int(1994), relation.Int(3500))
	bb.MustInsert(relation.String("ford"), relation.String("escort"), relation.Int(1996), relation.Int(5000))
	bb.MustInsert(relation.String("ford"), relation.String("taurus"), relation.Int(1995), relation.Int(6000))
	bb.MustInsert(relation.String("jaguar"), relation.String("xj6"), relation.Int(1994), relation.Int(17000))
	bb.MustInsert(relation.String("jaguar"), relation.String("xj6"), relation.Int(1996), relation.Int(23000))
	bb.MustInsert(relation.String("jaguar"), relation.String("xjs"), relation.Int(1995), relation.Int(20000))
	cat.Add(bb, relation.NewAttrSet("Make", "Model"))

	safety := relation.New("safety", relation.NewSchema("Make", "Safety"))
	safety.MustInsert(relation.String("ford"), relation.String("average"))
	safety.MustInsert(relation.String("jaguar"), relation.String("good"))
	cat.Add(safety, relation.NewAttrSet("Make"))

	free := relation.New("zips", relation.NewSchema("ZipCode", "Region"))
	free.MustInsert(relation.String("10001"), relation.String("manhattan"))
	cat.Add(free) // unrestricted

	return cat
}

func scan(name string) Expr { return &Scan{Relation: name} }

func eqCond(attr, val string) Condition {
	return Condition{Attr: attr, Op: EQ, Val: relation.String(val)}
}

func TestSchemas(t *testing.T) {
	cat := carCatalog()
	cases := []struct {
		expr Expr
		want relation.Schema
	}{
		{scan("ads"), relation.NewSchema("Make", "Model", "Year", "Price")},
		{&Select{Input: scan("ads"), Cond: eqCond("Make", "ford")}, relation.NewSchema("Make", "Model", "Year", "Price")},
		{&Project{Input: scan("ads"), Attrs: []string{"Make", "Price"}}, relation.NewSchema("Make", "Price")},
		{&Join{Left: scan("ads"), Right: scan("safety")}, relation.NewSchema("Make", "Model", "Year", "Price", "Safety")},
		{&Union{Left: scan("ads"), Right: scan("ads2")}, relation.NewSchema("Make", "Model", "Year", "Price")},
		{&Rename{Input: scan("safety"), Mapping: map[string]string{"Safety": "Rating"}}, relation.NewSchema("Make", "Rating")},
	}
	for _, c := range cases {
		got, err := c.expr.Schema(cat)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: schema %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	cat := carCatalog()
	bad := []Expr{
		scan("ghost"),
		&Select{Input: scan("ads"), Cond: eqCond("Nope", "x")},
		&Select{Input: scan("ads"), Cond: Condition{Attr: "Make", Op: EQ, Attr2: "Nope"}},
		&Project{Input: scan("ads"), Attrs: []string{"Nope"}},
		&Project{Input: scan("ads"), Attrs: []string{"Make", "Make"}},
		&Union{Left: scan("ads"), Right: scan("safety")},
		&Diff{Left: scan("ads"), Right: scan("safety")},
		&Rename{Input: scan("ads"), Mapping: map[string]string{"Make": "Model"}},
	}
	for _, e := range bad {
		if _, err := e.Schema(cat); err == nil {
			t.Errorf("%s: expected schema error", e)
		}
	}
}

func TestBindingsRules(t *testing.T) {
	cat := carCatalog()
	check := func(e Expr, want ...relation.AttrSet) {
		t.Helper()
		got, err := Bindings(e, cat)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: bindings %v, want %v", e, got, want)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Errorf("%s: binding[%d] = %s, want %s", e, i, got[i], want[i])
			}
		}
	}
	// Scan: the relation's own bindings.
	check(scan("bluebook"), relation.NewAttrSet("Make", "Model"))
	// σ with a constant discharges its attribute; π passes through.
	check(&Select{Input: scan("bluebook"), Cond: eqCond("Make", "ford")},
		relation.NewAttrSet("Model"))
	check(&Select{Input: scan("bluebook"),
		Cond: Condition{Attr: "Year", Op: GE, Val: relation.Int(1990)}},
		relation.NewAttrSet("Make", "Model"))
	check(&Project{Input: scan("bluebook"), Attrs: []string{"BBPrice"}},
		relation.NewAttrSet("Make", "Model"))
	// ∪: pairwise union. ads ∪ ads2 — both {Make} → {Make}.
	check(&Union{Left: scan("ads"), Right: scan("ads2")}, relation.NewAttrSet("Make"))
	// ⋈: M1 ∪ (M2 − attrs(E1)) and M2 ∪ (M1 − attrs(E2)). ads ⋈ bluebook:
	// {Make} ∪ ({Make,Model} − attrs(ads)) = {Make}; the other direction
	// gives {Make, Model}, which minimization drops as a superset.
	check(&Join{Left: scan("ads"), Right: scan("bluebook")}, relation.NewAttrSet("Make"))
	// ρ renames binding attributes.
	check(&Rename{Input: scan("safety"), Mapping: map[string]string{"Make": "Brand"}},
		relation.NewAttrSet("Brand"))
	// Unrestricted relation: no binding requirement.
	if got, _ := Bindings(scan("zips"), cat); len(got) != 0 {
		t.Errorf("zips bindings = %v, want none", got)
	}
}

func TestMinimize(t *testing.T) {
	in := []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("A"),
		relation.NewAttrSet("A"), // duplicate
		relation.NewAttrSet("C"),
		relation.NewAttrSet("A", "C"), // superset of both A and C
	}
	got := Minimize(in)
	if len(got) != 2 {
		t.Fatalf("minimized to %v", got)
	}
	if !got[0].Equal(relation.NewAttrSet("A")) || !got[1].Equal(relation.NewAttrSet("C")) {
		t.Errorf("minimized = %v", got)
	}
}

func TestGreedyOrder(t *testing.T) {
	ops := []Operand{
		{Name: "bluebook", Schema: relation.NewSchema("Make", "Model", "BBPrice"),
			Bindings: []relation.AttrSet{relation.NewAttrSet("Make", "Model")}},
		{Name: "ads", Schema: relation.NewSchema("Make", "Model", "Price"),
			Bindings: []relation.AttrSet{relation.NewAttrSet("Make")}},
	}
	order, err := GreedyOrder(ops, relation.NewAttrSet("Make"))
	if err != nil {
		t.Fatal(err)
	}
	// ads must run first: bluebook needs Model, which only ads supplies.
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v", order)
	}
	// With nothing bound there is no valid ordering.
	if _, err := GreedyOrder(ops, relation.NewAttrSet()); !errors.Is(err, ErrNoOrdering) {
		t.Errorf("err = %v", err)
	}
}

func TestGreedyOrderAlternativeBindings(t *testing.T) {
	// An operand with two alternative binding sets is executable through
	// either.
	ops := []Operand{
		{Name: "r", Schema: relation.NewSchema("A", "B"),
			Bindings: []relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")}},
	}
	if _, err := GreedyOrder(ops, relation.NewAttrSet("B")); err != nil {
		t.Errorf("alternative binding not used: %v", err)
	}
}

func TestMinCostOrderPrefersConstantFedOperands(t *testing.T) {
	// Both executable immediately, but r2's binding is covered by the
	// query constants while r1 would need dependent feeding; min-cost
	// places r2 first. (Greedy, scanning in slice order, would not.)
	ops := []Operand{
		{Name: "r1", Schema: relation.NewSchema("A", "B"),
			Bindings: []relation.AttrSet{relation.NewAttrSet("B")}},
		{Name: "r2", Schema: relation.NewSchema("A", "B"),
			Bindings: []relation.AttrSet{relation.NewAttrSet("A")}},
	}
	bound := relation.NewAttrSet("A", "B")
	cost := func(op Operand, constants, available relation.AttrSet) float64 {
		if op.Name == "r2" {
			return 1
		}
		return 10
	}
	order, err := MinCostOrder(ops, bound, cost)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Errorf("order = %v, want r2 first", order)
	}
	// Consistency: min-cost and greedy agree on existence.
	if _, err := MinCostOrder(ops, relation.NewAttrSet(), nil); !errors.Is(err, ErrNoOrdering) {
		t.Errorf("err = %v", err)
	}
}

func TestEvalScanAndSelectPushdown(t *testing.T) {
	cat := carCatalog()
	// σ[Make=ford](ads): the constant must be pushed into the scan, or the
	// binding-restricted Populate would fail.
	rel, err := Eval(&Select{Input: scan("ads"), Cond: eqCond("Make", "ford")}, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("fords = %d, want 3", rel.Len())
	}
	// Without any constant the scan cannot run.
	if _, err := Eval(scan("ads"), cat, nil); !errors.Is(err, ErrBindingUnsatisfied) {
		t.Errorf("err = %v", err)
	}
	// Unrestricted relations evaluate without bindings.
	if rel, err := Eval(scan("zips"), cat, nil); err != nil || rel.Len() != 1 {
		t.Errorf("zips: %v %v", rel, err)
	}
}

func TestEvalNumericSelect(t *testing.T) {
	cat := carCatalog()
	e := &Select{
		Input: &Select{Input: scan("ads"), Cond: eqCond("Make", "jaguar")},
		Cond:  Condition{Attr: "Year", Op: GE, Val: relation.Int(1995)},
	}
	rel, err := Eval(e, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("jaguars ≥1995 = %d, want 1", rel.Len())
	}
}

func TestEvalDependentJoin(t *testing.T) {
	cat := carCatalog()
	// ads ⋈ bluebook with Make bound: bluebook needs Model values from
	// ads tuples (sideways information passing).
	e := &Join{Left: scan("ads"), Right: scan("bluebook")}
	rel, err := Eval(e, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	// Every ford ad row joins its (Make, Model, Year) blue book row.
	if rel.Len() != 3 {
		t.Errorf("join rows = %d, want 3\n%s", rel.Len(), rel)
	}
	if !rel.Schema().EqualUnordered(relation.NewSchema("Make", "Model", "Year", "Price", "BBPrice")) {
		t.Errorf("schema = %v", rel.Schema())
	}
	// bluebook was populated once per distinct (Make, Model, Year) combo
	// of the ford ads (3 combos), not once per final row blowup and not
	// unfiltered.
	if got := cat.PopulateCount("bluebook"); got != 3 {
		t.Errorf("bluebook populated %d times, want 3 (per distinct shared combo)", got)
	}
}

func TestEvalAttrAttrCondition(t *testing.T) {
	cat := carCatalog()
	// Price < BBPrice over the dependent join — the paper's headline
	// condition.
	e := &Select{
		Input: &Join{Left: scan("ads"), Right: scan("bluebook")},
		Cond:  Condition{Attr: "Price", Op: LT, Attr2: "BBPrice"},
	}
	rel, err := Eval(e, cat, map[string]relation.Value{"Make": relation.String("jaguar")})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples() {
		p, _ := rel.Get(tp, "Price")
		bb, _ := rel.Get(tp, "BBPrice")
		if p.FloatVal() >= bb.FloatVal() {
			t.Fatalf("condition failed: %v", tp)
		}
	}
	if rel.Len() != 1 { // xj6/1994 16000<17000 qualifies; 1996 24000>23000 does not
		t.Errorf("rows = %d, want 1\n%s", rel.Len(), rel)
	}
}

func TestEvalThreeWayJoinOrdering(t *testing.T) {
	cat := carCatalog()
	// safety ⋈ bluebook ⋈ ads with only Make bound: valid order must put
	// ads (or safety) before bluebook.
	e := JoinAll(scan("bluebook"), scan("safety"), scan("ads"))
	rel, err := Eval(e, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Errorf("rows = %d, want 3", rel.Len())
	}
	for _, tp := range rel.Tuples() {
		s, _ := rel.Get(tp, "Safety")
		if s.Str() != "average" {
			t.Fatalf("ford safety = %v", s)
		}
	}
}

func TestEvalUnionDiffRename(t *testing.T) {
	cat := carCatalog()
	u := &Union{Left: scan("ads"), Right: scan("ads2")}
	rel, err := Eval(u, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // 3 ford rows in ads; ads2's ford row is a duplicate
		t.Errorf("union rows = %d, want 3\n%s", rel.Len(), rel)
	}
	d := &Diff{Left: scan("ads"), Right: scan("ads2")}
	rel, err = Eval(d, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("diff rows = %d, want 2", rel.Len())
	}
	// Rename: bound value arrives under the new name and must reach the
	// scan under the old one.
	r := &Rename{Input: scan("safety"), Mapping: map[string]string{"Make": "Brand"}}
	rel, err = Eval(r, cat, map[string]relation.Value{"Brand": relation.String("jaguar")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || !rel.Schema().Has("Brand") {
		t.Errorf("rename eval: %v %v", rel.Schema(), rel.Len())
	}
}

func TestEvalJoinNoOrdering(t *testing.T) {
	cat := carCatalog()
	e := &Join{Left: scan("ads"), Right: scan("bluebook")}
	_, err := Eval(e, cat, nil) // nothing bound: Make can never be supplied
	if !errors.Is(err, ErrNoOrdering) {
		t.Errorf("err = %v", err)
	}
}

func TestEvalCartesianJoin(t *testing.T) {
	cat := carCatalog()
	e := &Join{Left: scan("safety"), Right: scan("zips")}
	rel, err := Eval(e, cat, map[string]relation.Value{"Make": relation.String("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 { // 1 ford safety row × 1 zip row
		t.Errorf("rows = %d", rel.Len())
	}
}

func TestExprStrings(t *testing.T) {
	e := &Select{
		Input: &Project{Input: &Join{Left: scan("a"), Right: scan("b")}, Attrs: []string{"X"}},
		Cond:  Condition{Attr: "X", Op: LT, Val: relation.Int(5)},
	}
	s := e.String()
	for _, want := range []string{"σ[X < 5]", "π[X]", "(a ⋈ b)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q: %s", want, s)
		}
	}
	r := &Rename{Input: scan("a"), Mapping: map[string]string{"X": "Y", "A": "B"}}
	if got := r.String(); got != "ρ[A→B, X→Y](a)" {
		t.Errorf("rename rendering = %q", got)
	}
	for op, want := range map[CmpOp]string{EQ: "=", NE: "≠", LT: "<", LE: "≤", GT: ">", GE: "≥"} {
		if op.String() != want {
			t.Errorf("op %d renders %q", op, op.String())
		}
	}
}

func TestJoinAllUnionAll(t *testing.T) {
	if JoinAll() != nil || UnionAll() != nil {
		t.Error("empty folds should be nil")
	}
	if got := JoinAll(scan("a")).String(); got != "a" {
		t.Errorf("single fold = %q", got)
	}
	if got := JoinAll(scan("a"), scan("b"), scan("c")).String(); got != "((a ⋈ b) ⋈ c)" {
		t.Errorf("fold = %q", got)
	}
	if got := UnionAll(scan("a"), scan("b")).String(); got != "(a ∪ b)" {
		t.Errorf("union fold = %q", got)
	}
}
