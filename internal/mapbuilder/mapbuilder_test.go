package mapbuilder_test

import (
	"strings"
	"testing"

	"webbase/internal/carmaps"
	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/sites"
)

// featuresURLFor returns a concrete newsday car-features URL for session
// recording.
func featuresURLFor(t *testing.T, w *sites.World) string {
	t.Helper()
	expr, err := navmap.Translate(carmaps.Newsday())
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := expr.Execute(w.Server, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	u, _ := rel.Get(rel.Tuples()[0], "Url")
	return u.Str()
}

func TestBuildNewsdaySession(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}
	sessions := carmaps.Sessions(featuresURLFor(t, w))

	var newsday *mapbuilder.Session
	for _, s := range sessions {
		if s.Relation == "newsday" {
			newsday = s
		}
	}
	m, stats, err := b.Build(newsday)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("built map invalid: %v", err)
	}
	// Figure 2 shape: 4 distinct page schemas (home, UsedCarPg, carPg,
	// carData). Revisits through mapbuilder.EvRestart must not duplicate nodes.
	nodes, edges := m.Size()
	if nodes != 4 {
		t.Errorf("nodes = %d, want 4:\n%s", nodes, m)
	}
	if edges < 4 {
		t.Errorf("edges = %d, want ≥4:\n%s", edges, m)
	}
	// Both f1 targets recorded: direct-to-data and via carPg.
	dataTargets := 0
	for _, e := range m.Edges() {
		if e.Action.Kind == navmap.ActSubmitForm && e.Action.FormName == "f1" {
			dataTargets++
		}
	}
	if dataTargets != 2 {
		t.Errorf("f1 should have 2 target edges (carPg, carData), got %d", dataTargets)
	}

	// Automation statistics: overwhelmingly automatic, like the paper's
	// "<5% added manually" (our pages are smaller, so allow some slack).
	if stats.Objects == 0 || stats.Attributes == 0 {
		t.Fatalf("no automatic extraction counted: %+v", stats)
	}
	if r := stats.ManualRatio(); r > 0.15 {
		t.Errorf("manual ratio = %.2f, should be small (stats: %+v)", r, stats)
	}
	if stats.PagesLoaded < 5 {
		t.Errorf("pages loaded = %d", stats.PagesLoaded)
	}
	if !strings.Contains(stats.String(), "objects=") {
		t.Error("stats rendering")
	}
}

// TestSessionMapsBehaveLikeHandMaps builds every session's map and checks
// the derived expression produces the same tuples as the hand-written map
// of carmaps — the behavioural equivalence that makes mapping by example
// trustworthy.
func TestSessionMapsBehaveLikeHandMaps(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}
	featURL := featuresURLFor(t, w)
	hand := carmaps.AllMaps()

	inputsFor := map[string]map[string]string{
		"newsday":            {"Make": "ford", "Model": "escort"},
		"newsdayCarFeatures": {"Url": featURL},
		"nyTimes":            {"Make": "ford", "Model": "escort"},
		"newYorkDaily":       {"Make": "ford"},
		"carPoint":           {"Make": "ford", "Model": "escort"},
		"autoWeb":            {"Make": "ford", "Model": "escort"},
		"wwWheels":           {"Make": "ford", "Model": "escort"},
		"autoConnect":        {"Make": "ford", "Condition": "good"},
		"yahooCars":          {"Make": "ford", "Model": "escort"},
		"kellys":             {"Make": "jaguar", "Model": "xj6", "Year": "1994", "Condition": "good"},
		"carAndDriver":       {"Make": "jaguar"},
		"carReviews":         {"Make": "honda", "Model": "civic"},
		"carFinance":         {"ZipCode": "11201", "Duration": "36"},
	}

	for _, s := range carmaps.Sessions(featURL) {
		s := s
		t.Run(s.Relation, func(t *testing.T) {
			built, _, err := b.Build(s)
			if err != nil {
				t.Fatal(err)
			}
			builtExpr, err := navmap.Translate(built)
			if err != nil {
				t.Fatal(err)
			}
			handExpr, err := navmap.Translate(hand[s.Relation])
			if err != nil {
				t.Fatal(err)
			}
			inputs := inputsFor[s.Relation]
			gotRel, _, err := builtExpr.Execute(w.Server, inputs)
			if err != nil {
				t.Fatalf("built expression: %v", err)
			}
			wantRel, _, err := handExpr.Execute(w.Server, inputs)
			if err != nil {
				t.Fatalf("hand expression: %v", err)
			}
			if gotRel.Len() != wantRel.Len() {
				t.Errorf("built map collected %d tuples, hand map %d", gotRel.Len(), wantRel.Len())
			}
		})
	}
}

// TestBuiltMapExpressionTextRoundTrip: even though builder-generated node
// IDs are punctuation-heavy structural signatures, the derived expression
// formats to parseable text and the re-parsed expression behaves the same.
func TestBuiltMapExpressionTextRoundTrip(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}
	var newsday *mapbuilder.Session
	for _, s := range carmaps.Sessions(featuresURLFor(t, w)) {
		if s.Relation == "newsday" {
			newsday = s
		}
	}
	m, _, err := b.Build(newsday)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := navmap.Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	text := navcalc.FormatExpression(expr)
	reparsed, err := navcalc.ParseExpression(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	in := map[string]string{"Make": "ford", "Model": "escort"}
	a, _, err := expr.Execute(w.Server, in)
	if err != nil {
		t.Fatal(err)
	}
	bb, _, err := reparsed.Execute(w.Server, in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != bb.Len() {
		t.Errorf("tuples %d vs %d", a.Len(), bb.Len())
	}
}

func TestBuildErrors(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}

	// No schema.
	if _, _, err := b.Build(&mapbuilder.Session{Relation: "x", StartURL: "http://" + sites.NewsdayHost + "/"}); err == nil {
		t.Error("schemaless session should fail")
	}
	// Bad start URL.
	_, _, err := b.Build(&mapbuilder.Session{Relation: "x", StartURL: "http://ghost.example/",
		Schema: relation.NewSchema("A")})
	if err == nil {
		t.Error("unknown host should fail")
	}
	// Following a nonexistent link.
	_, _, err = b.Build(&mapbuilder.Session{
		Relation: "x", StartURL: "http://" + sites.NewsdayHost + "/",
		Schema: relation.NewSchema("A"),
		Events: []mapbuilder.Event{{Kind: mapbuilder.EvFollow, LinkName: "No Such Link"}},
	})
	if err == nil || !strings.Contains(err.Error(), "no link") {
		t.Errorf("err = %v", err)
	}
	// Submitting a nonexistent form.
	_, _, err = b.Build(&mapbuilder.Session{
		Relation: "x", StartURL: "http://" + sites.NewsdayHost + "/auto",
		Schema: relation.NewSchema("A"),
		Events: []mapbuilder.Event{{Kind: mapbuilder.EvSubmit, FormName: "ghost"}},
	})
	if err == nil || !strings.Contains(err.Error(), "no form") {
		t.Errorf("err = %v", err)
	}
	// A session that never marks a data page yields an invalid map.
	_, _, err = b.Build(&mapbuilder.Session{
		Relation: "x", StartURL: "http://" + sites.NewsdayHost + "/",
		Schema: relation.NewSchema("A"),
		Events: []mapbuilder.Event{{Kind: mapbuilder.EvFollow, LinkName: "Automobiles"}},
	})
	if err == nil || !strings.Contains(err.Error(), "data page") {
		t.Errorf("err = %v", err)
	}
}

func TestCheckMapCleanOnUnchangedSite(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}
	for name, m := range carmaps.AllMaps() {
		if name == "newsdayCarFeatures" {
			continue // needs a live Url; covered below
		}
		inputs := map[string]string{"Make": "ford", "Model": "escort",
			"Condition": "good", "ZipCode": "11201", "Duration": "36", "Year": "1994"}
		if name == "kellys" || name == "carAndDriver" {
			inputs["Make"], inputs["Model"] = "jaguar", "xj6"
		}
		drifts, err := b.CheckMap(m, inputs)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(drifts) != 0 {
			t.Errorf("%s: unexpected drift on unchanged site: %v", name, drifts)
		}
	}
}

func TestCheckMapDetectsChanges(t *testing.T) {
	w := sites.BuildWorld()
	b := &mapbuilder.Builder{Fetcher: w.Server}
	inputs := map[string]string{"Make": "ford", "Model": "escort"}

	// Renamed link: a map expecting the old link text drifts.
	m := carmaps.Newsday()
	stale := navmap.New("stale", m.StartURL, m.Schema)
	stale.AddNode(&navmap.Node{ID: "home"})
	stale.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{{Header: "Make", Attr: "Make"}}}})
	stale.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Motorcars"}, "data")
	drifts, err := b.CheckMap(stale, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || !strings.Contains(drifts[0].Problem, "Motorcars") {
		t.Errorf("drifts = %v", drifts)
	}

	// Lost form field: structural change needing manual remapping.
	stale2 := navmap.New("stale2", "http://"+sites.WWWheelsHost+"/", m.Schema)
	stale2.AddNode(&navmap.Node{ID: "home"})
	stale2.AddNode(&navmap.Node{ID: "data", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{{Header: "Make", Attr: "Make"}}}})
	stale2.AddEdge("home", navmap.Action{Kind: navmap.ActSubmitForm, FormName: "q",
		Fills: []navcalc.FieldFill{navcalc.Fill("color", "Color")}}, "data")
	drifts, err = b.CheckMap(stale2, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || !strings.Contains(drifts[0].Problem, "color") {
		t.Errorf("drifts = %v", drifts)
	}

	// Vanished host.
	stale3 := navmap.New("stale3", "http://gone.example/", m.Schema)
	stale3.AddNode(&navmap.Node{ID: "home", IsData: true,
		Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{{Header: "A", Attr: "Make"}}}})
	if _, err := b.CheckMap(stale3, inputs); err == nil {
		t.Error("vanished host should error")
	}
	if d := (mapbuilder.Drift{Node: "n", Problem: "p"}); d.String() != "n: p" {
		t.Error("drift rendering")
	}
}
