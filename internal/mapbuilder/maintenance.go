package mapbuilder

import (
	"fmt"
	"net/url"
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/navmap"
	"webbase/internal/web"
)

// Drift describes one discrepancy between a navigation map and the live
// site — the map-maintenance signal of Section 7 ("modifications to Web
// sites can be automatically detected by periodically comparing the
// navigation map against its corresponding site").
type Drift struct {
	Node    navmap.NodeID
	Problem string
}

func (d Drift) String() string { return fmt.Sprintf("%s: %s", d.Node, d.Problem) }

// CheckMap re-crawls the site along the map's edges using the given sample
// inputs and reports every edge whose action is no longer available:
// vanished links, renamed or restructured forms, missing form fields.
// An empty result means the map still matches the site.
func (b *Builder) CheckMap(m *navmap.Map, inputs map[string]string) ([]Drift, error) {
	start := m.StartURL
	if m.StartURLVar != "" {
		v, ok := inputs[m.StartURLVar]
		if !ok {
			return nil, fmt.Errorf("mapbuilder: checking %s requires input %q", m.Name, m.StartURLVar)
		}
		start = v
	}
	resp, err := b.Fetcher.Fetch(web.NewGet(start))
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return []Drift{{Node: m.Start, Problem: fmt.Sprintf("start URL %s returned status %d", start, resp.Status)}}, nil
	}
	visited := make(map[navmap.NodeID]bool)
	var drifts []Drift
	b.checkNode(m, m.Start, resp.URL, htmlkit.Parse(resp.Body), inputs, visited, &drifts)
	return drifts, nil
}

// checkNode verifies every out-edge of node against the live page and
// recurses into unvisited targets.
func (b *Builder) checkNode(m *navmap.Map, node navmap.NodeID, pageURL string,
	doc *htmlkit.Node, inputs map[string]string, visited map[navmap.NodeID]bool, drifts *[]Drift) {

	if visited[node] {
		return
	}
	visited[node] = true

	for _, e := range m.OutEdges(node) {
		nextURL, nextDoc, drift := b.checkEdge(e, pageURL, doc, inputs)
		if drift != "" {
			*drifts = append(*drifts, Drift{Node: node, Problem: drift})
			continue
		}
		if nextDoc != nil && !visited[e.To] {
			b.checkNode(m, e.To, nextURL, nextDoc, inputs, visited, drifts)
		}
	}
}

// checkEdge verifies one action against the live page, returning the page
// it leads to (nil when the action could not be exercised with the sample
// inputs — e.g. an optional variable without a sample value — which is not
// drift).
func (b *Builder) checkEdge(e *navmap.Edge, pageURL string, doc *htmlkit.Node,
	inputs map[string]string) (string, *htmlkit.Node, string) {

	switch e.Action.Kind {
	case navmap.ActFollowLink:
		for _, l := range htmlkit.Links(doc, pageURL) {
			if strings.EqualFold(l.Name, e.Action.LinkName) {
				return b.tryFetch(web.NewGet(l.Address))
			}
		}
		// A missing More link on the last data page is normal pagination,
		// not drift; a missing structural link is drift. Self-loops are
		// treated as pagination.
		if e.From == e.To {
			return "", nil, ""
		}
		return "", nil, fmt.Sprintf("link %q no longer present on %s", e.Action.LinkName, pageURL)

	case navmap.ActFollowVar:
		want, ok := inputs[e.Action.EnvVar]
		if !ok {
			return "", nil, "" // cannot exercise without a sample value
		}
		for _, l := range htmlkit.Links(doc, pageURL) {
			if strings.EqualFold(l.Name, want) {
				return b.tryFetch(web.NewGet(l.Address))
			}
		}
		return "", nil, fmt.Sprintf("no link named %q (value of %s) on %s", want, e.Action.EnvVar, pageURL)

	default: // ActSubmitForm
		form, ok := findFormByName(doc, pageURL, e.Action.FormName)
		if !ok {
			return "", nil, fmt.Sprintf("form %q no longer present on %s", e.Action.FormName, pageURL)
		}
		values := url.Values{}
		for _, fl := range form.Fields {
			if fl.Default != "" && fl.Widget != htmlkit.WidgetSubmit {
				values.Set(fl.Name, fl.Default)
			}
		}
		for _, f := range e.Action.Fills {
			if _, exists := form.Field(f.Field); !exists {
				return "", nil, fmt.Sprintf("form %q lost field %q (structural change needs manual remapping)", e.Action.FormName, f.Field)
			}
			v := f.Const
			if v == "" {
				v = inputs[f.Var]
			}
			if v != "" {
				values.Set(f.Field, v)
			}
		}
		for _, name := range form.MandatoryFields() {
			if values.Get(name) == "" {
				return "", nil, "" // cannot exercise; not drift
			}
		}
		return b.tryFetch(web.NewSubmit(form.Action, form.Method, values))
	}
}

func (b *Builder) tryFetch(req *web.Request) (string, *htmlkit.Node, string) {
	resp, err := b.Fetcher.Fetch(req)
	if err != nil {
		return "", nil, fmt.Sprintf("fetching %s: %v", req.URL, err)
	}
	if !resp.OK() {
		return "", nil, fmt.Sprintf("%s returned status %d", req.URL, resp.Status)
	}
	return resp.URL, htmlkit.Parse(resp.Body), ""
}
