package mapbuilder_test

import (
	"strings"
	"testing"

	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/web"
)

// versionedSite builds a small dealer site whose entry link text and form
// shape can change between "releases" — the maintenance scenario of
// Section 7 ("since we first built navigation maps for car-related sites,
// we have noticed quite a few changes to these sites... we only had to
// navigate through the modified pages").
func versionedSite(linkText string, extraField bool) *web.Server {
	host := "dealer.example"
	m := web.NewMux(host)
	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL,
			`<html><body><a href="/search">`+linkText+`</a></body></html>`), nil
	}))
	m.Handle("/search", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		extra := ""
		if extraField {
			extra = `Zip: <input type="text" name="zip"><br>`
		}
		return web.HTML(req.URL, `<html><body>
<form name="q" action="/cgi/q" method="get">
Make: <input type="text" name="make"><br>`+extra+`
<input type="submit" value="Go"></form></body></html>`), nil
	}))
	m.Handle("/cgi/q", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, "<html><body>make required</body></html>"), nil
		}
		return web.HTML(req.URL, `<html><body><table>
<tr><th>Make</th><th>Price</th></tr>
<tr><td>`+mk+`</td><td>$9,999</td></tr>
</table></body></html>`), nil
	}))
	s := web.NewServer()
	s.Register(m)
	return s
}

func dealerSession() *mapbuilder.Session {
	return &mapbuilder.Session{
		Relation: "dealer",
		StartURL: "http://dealer.example/",
		Schema:   relation.NewSchema("Make", "Price"),
		Events: []mapbuilder.Event{
			{Kind: mapbuilder.EvFollow, LinkName: "Used Cars"},
			{Kind: mapbuilder.EvSubmit, FormName: "q",
				Values: map[string]string{"make": "ford"},
				VarOf:  map[string]string{"make": "Make"}},
			{Kind: mapbuilder.EvMarkData, Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
				{Header: "Make", Attr: "Make"},
				{Header: "Price", Attr: "Price", Money: true},
			}}},
		},
	}
}

// TestSiteEvolutionLifecycle walks the full maintenance story: map a site,
// the site changes its entry link, the periodic check detects the drift,
// the designer re-browses the one changed page, and the refreshed map
// works again — while a benign change (an extra optional form field) is
// not flagged at all.
func TestSiteEvolutionLifecycle(t *testing.T) {
	v1 := versionedSite("Used Cars", false)
	b := &mapbuilder.Builder{Fetcher: v1}
	m, _, err := b.Build(dealerSession())
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]string{"Make": "ford"}

	// v1: map is clean and the derived expression collects data.
	drifts, err := b.CheckMap(m, inputs)
	if err != nil || len(drifts) != 0 {
		t.Fatalf("v1 drift: %v %v", drifts, err)
	}
	expr, err := navmap.Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := expr.Execute(v1, inputs)
	if err != nil || rel.Len() != 1 {
		t.Fatalf("v1 execute: %v %v", rel, err)
	}

	// v2: the site renames the entry link. Detection, then failure of the
	// stale expression.
	v2 := versionedSite("Pre-Owned Vehicles", false)
	b2 := &mapbuilder.Builder{Fetcher: v2}
	drifts, err = b2.CheckMap(m, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || !strings.Contains(drifts[0].Problem, "Used Cars") {
		t.Fatalf("v2 drift = %v", drifts)
	}
	if _, _, err := expr.Execute(v2, inputs); err == nil {
		t.Fatal("stale expression should fail against v2")
	}

	// The designer re-records the session with the new link text; the
	// refreshed map is clean and works.
	s2 := dealerSession()
	s2.Events[0].LinkName = "Pre-Owned Vehicles"
	m2, _, err := b2.Build(s2)
	if err != nil {
		t.Fatal(err)
	}
	if drifts, _ := b2.CheckMap(m2, inputs); len(drifts) != 0 {
		t.Fatalf("refreshed map drifts: %v", drifts)
	}
	expr2, err := navmap.Translate(m2)
	if err != nil {
		t.Fatal(err)
	}
	if rel, _, err := expr2.Execute(v2, inputs); err != nil || rel.Len() != 1 {
		t.Fatalf("refreshed execute: %v %v", rel, err)
	}

	// v3: a benign change — an extra optional form field — needs no map
	// update ("others can be applied automatically"): no drift, and the
	// old expression still runs.
	v3 := versionedSite("Pre-Owned Vehicles", true)
	b3 := &mapbuilder.Builder{Fetcher: v3}
	if drifts, _ := b3.CheckMap(m2, inputs); len(drifts) != 0 {
		t.Fatalf("benign change flagged: %v", drifts)
	}
	if rel, _, err := expr2.Execute(v3, inputs); err != nil || rel.Len() != 1 {
		t.Fatalf("execute across benign change: %v %v", rel, err)
	}
}
