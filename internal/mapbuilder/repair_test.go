package mapbuilder_test

import (
	"strings"
	"testing"

	"webbase/internal/carmaps"
	"webbase/internal/mapbuilder"
	"webbase/internal/navmap"
	"webbase/internal/sites"
	"webbase/internal/web"
)

var repairInputs = map[string]string{"Make": "ford", "Model": "escort",
	"Condition": "good", "ZipCode": "11201", "Duration": "36", "Year": "1994"}

// redesigned wraps the simulated world with an active Redesign of host.
func redesigned(host string, rewrites ...web.Rewrite) web.Fetcher {
	rd := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{host: rewrites},
	}
	rd.Activate()
	return rd
}

// TestRepairReanchorsRenamedLink: the home-page "Automobiles" link was
// renamed; Repair finds the unique live link whose target structurally
// matches the mapped node and re-anchors the edge — without touching the
// input map — and the repaired map checks clean against the live site.
func TestRepairReanchorsRenamedLink(t *testing.T) {
	f := redesigned(sites.NewsdayHost, web.Rewrite{Old: ">Automobiles<", New: ">Cars and Trucks<"})
	b := &mapbuilder.Builder{Fetcher: f}
	m := carmaps.Newsday()

	repaired, err := b.Repair(m, repairInputs)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range repaired.Edges() {
		if e.Action.LinkName == "Cars and Trucks" {
			found = true
		}
		if e.Action.LinkName == "Automobiles" {
			t.Error("repaired map still navigates the old link name")
		}
	}
	if !found {
		t.Fatalf("edge not re-anchored:\n%s", repaired)
	}
	// The input map is untouched (in-flight queries own it).
	for _, e := range m.Edges() {
		if e.Action.LinkName == "Cars and Trucks" {
			t.Fatal("Repair mutated its input map")
		}
	}
	// The repaired map is clean against the redesigned site...
	drifts, err := b.CheckMap(repaired, repairInputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 0 {
		t.Errorf("repaired map still drifts: %v", drifts)
	}
	// ...and answers end to end.
	expr, err := navmap.Translate(repaired)
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := expr.Execute(f, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Error("repaired map returns no tuples")
	}
}

// TestRepairReanchorsRenamedForm: the f1 form was renamed; exactly one
// live form accepts the edge's fills, so the edge re-anchors onto it.
// Both f1 edges (→carPg and →carData) share the drifted action and must
// re-anchor consistently.
func TestRepairReanchorsRenamedForm(t *testing.T) {
	f := redesigned(sites.NewsdayHost, web.Rewrite{Old: `"f1"`, New: `"searchform"`})
	b := &mapbuilder.Builder{Fetcher: f}

	repaired, err := b.Repair(carmaps.Newsday(), repairInputs)
	if err != nil {
		t.Fatal(err)
	}
	renamed := 0
	for _, e := range repaired.Edges() {
		if e.Action.Kind == navmap.ActSubmitForm && e.Action.FormName == "searchform" {
			renamed++
		}
		if e.Action.FormName == "f1" {
			t.Error("repaired map still submits the old form name")
		}
	}
	if renamed != 2 {
		t.Errorf("re-anchored %d f1 edges, want both", renamed)
	}
	drifts, err := b.CheckMap(repaired, repairInputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 0 {
		t.Errorf("repaired map still drifts: %v", drifts)
	}
}

// TestRepairAmbiguousCandidatesErrors: when the renamed link's target
// matches more than one live link, Repair refuses to guess — the site
// must be re-mapped by example.
func TestRepairAmbiguousCandidatesErrors(t *testing.T) {
	// newYorkDaily's home has a single "Classifieds Search" link; rename
	// it AND give the filler link the same target shape is hard to
	// arrange, so instead make the mapped link vanish while two live links
	// lead to structurally identical pages: newsday's "Collectible Cars"
	// and "Sport Utility" both render plain car tables, so a map edge onto
	// a bare table node is ambiguous once its own link is renamed.
	m := navmap.New("amb", "http://"+sites.NewsdayHost+"/", carmaps.Newsday().Schema)
	m.AddNode(&navmap.Node{ID: "home"})
	m.AddNode(&navmap.Node{ID: "list", IsData: true,
		Extract: carmaps.Newsday().Node("carData").Extract})
	// The extract columns include Contact, which collectibles/suv tables
	// lack; trim to the shared prefix so both match.
	spec := m.Node("list").Extract
	spec.Columns = spec.Columns[:4] // Make, Model, Year, Price
	spec.LinkCols = nil
	m.Node("list").Extract = spec
	m.AddEdge("home", navmap.Action{Kind: navmap.ActFollowLink, LinkName: "Bargain Bin"}, "list")

	b := &mapbuilder.Builder{Fetcher: sites.BuildWorld().Server}
	_, err := b.Repair(m, repairInputs)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous re-anchor did not error: %v", err)
	}
}

// TestRepairNoCandidateErrors: the mapped link vanished and nothing on
// the live page leads to a matching target.
func TestRepairNoCandidateErrors(t *testing.T) {
	f := redesigned(sites.NewsdayHost,
		web.Rewrite{Old: `<a href="http://newsday.example/auto">Automobiles</a>`, New: ""})
	b := &mapbuilder.Builder{Fetcher: f}
	_, err := b.Repair(carmaps.Newsday(), repairInputs)
	if err == nil {
		t.Fatal("vanished section repaired from nothing")
	}
}

// TestRepairPresentButFailingLinkErrors: the mapped link is still on the
// page — the drift came from its target, not a rename — so re-anchoring
// onto a different link would mis-repair a merely-failing site.
func TestRepairPresentButFailingLinkErrors(t *testing.T) {
	world := sites.BuildWorld().Server
	f := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		if strings.Contains(req.URL, "/auto") {
			return &web.Response{URL: req.URL, Status: 500}, nil
		}
		return world.Fetch(req)
	})
	b := &mapbuilder.Builder{Fetcher: f}
	_, err := b.Repair(carmaps.Newsday(), repairInputs)
	if err == nil || !strings.Contains(err.Error(), "is present but its target is failing") {
		t.Fatalf("expected the present-but-failing refusal, got: %v", err)
	}
}

// TestRepairFollowVarUnrepairable: a variable-named link takes its text
// from query inputs; when it is gone there is no rename to discover.
func TestRepairFollowVarUnrepairable(t *testing.T) {
	// yahooCars navigates by make/model directory links; break the make
	// directory by renaming the bound value's link text.
	f := redesigned(sites.YahooCarsHost, web.Rewrite{Old: ">ford<", New: ">fjord<"})
	b := &mapbuilder.Builder{Fetcher: f}
	_, err := b.Repair(carmaps.YahooCars(), repairInputs)
	if err == nil || !strings.Contains(err.Error(), "cannot be re-anchored") {
		t.Fatalf("FollowVar repair should be refused: %v", err)
	}
}

// TestRepairCleanSiteIsIdentity: repairing an undrifted map changes
// nothing — same fingerprint, so a no-op repair never triggers a swap.
func TestRepairCleanSiteIsIdentity(t *testing.T) {
	b := &mapbuilder.Builder{Fetcher: sites.BuildWorld().Server}
	m := carmaps.Newsday()
	repaired, err := b.Repair(m, repairInputs)
	if err != nil {
		t.Fatal(err)
	}
	if navmap.Fingerprint(repaired) != navmap.Fingerprint(m) {
		t.Errorf("repair of a clean site changed the map:\n%s\nvs\n%s", m, repaired)
	}
}
