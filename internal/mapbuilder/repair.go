package mapbuilder

import (
	"fmt"
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/web"
)

// Repair is the healing half of map maintenance: where CheckMap reports
// drifted edges, Repair walks the live site and re-anchors them onto the
// renamed link or form, returning a repaired copy of the map (the input
// map is never modified, so in-flight queries on the old map are safe).
//
// Re-anchoring is deliberately conservative. A drifted follow-link edge is
// repaired only when exactly one live link leads to a page that
// structurally matches the edge's target node (its forms, fields, links
// and — for data nodes — extraction table are all present); a drifted
// form edge only when exactly one live form accepts every field the edge
// fills. Zero candidates or an ambiguous tie means the redesign is beyond
// automatic repair and the site must be re-mapped by example; Repair
// returns an error and the health tracker's bounded attempts take it from
// there.
func (b *Builder) Repair(m *navmap.Map, inputs map[string]string) (*navmap.Map, error) {
	start := m.StartURL
	if m.StartURLVar != "" {
		v, ok := inputs[m.StartURLVar]
		if !ok {
			return nil, fmt.Errorf("mapbuilder: repairing %s requires input %q", m.Name, m.StartURLVar)
		}
		start = v
	}
	resp, err := b.Fetcher.Fetch(web.NewGet(start))
	if err != nil {
		return nil, fmt.Errorf("mapbuilder: repairing %s: fetching start page: %w", m.Name, err)
	}
	if !resp.OK() {
		return nil, fmt.Errorf("mapbuilder: repairing %s: start URL %s returned status %d", m.Name, start, resp.Status)
	}
	repaired := m.Clone()
	walk := &repairWalk{
		b:       b,
		m:       repaired,
		inputs:  inputs,
		visited: make(map[navmap.NodeID]bool),
		renames: make(map[string]navmap.Action),
	}
	if err := walk.node(repaired.Start, resp.URL, htmlkit.Parse(resp.Body)); err != nil {
		return nil, err
	}
	return repaired, nil
}

// repairWalk carries the state of one Repair traversal. renames memoizes
// each repaired action by its original key, so parallel edges sharing one
// drifted action (the f1 form feeding both carData and carPg in Figure 2)
// are re-anchored consistently instead of the second edge searching again
// with the first one's new name already taken.
type repairWalk struct {
	b       *Builder
	m       *navmap.Map
	inputs  map[string]string
	visited map[navmap.NodeID]bool
	renames map[string]navmap.Action
}

func (w *repairWalk) node(node navmap.NodeID, pageURL string, doc *htmlkit.Node) error {
	if w.visited[node] {
		return nil
	}
	w.visited[node] = true
	for _, e := range w.m.OutEdges(node) {
		if na, ok := w.renames[e.Action.String()]; ok {
			e.Action = na
		}
		nextURL, nextDoc, drift := w.b.checkEdge(e, pageURL, doc, w.inputs)
		if drift != "" {
			oldKey := e.Action.String()
			var err error
			nextURL, nextDoc, err = w.reanchor(e, pageURL, doc)
			if err != nil {
				return fmt.Errorf("mapbuilder: repairing %s at node %s: %w", w.m.Name, node, err)
			}
			w.renames[oldKey] = e.Action
		}
		if nextDoc != nil && !w.visited[e.To] {
			if err := w.node(e.To, nextURL, nextDoc); err != nil {
				return err
			}
		}
	}
	return nil
}

// reanchor repairs one drifted edge in place and returns the page the
// repaired action leads to.
func (w *repairWalk) reanchor(e *navmap.Edge, pageURL string, doc *htmlkit.Node) (string, *htmlkit.Node, error) {
	switch e.Action.Kind {
	case navmap.ActFollowLink:
		return w.reanchorLink(e, pageURL, doc)
	case navmap.ActSubmitForm:
		return w.reanchorForm(e, pageURL, doc)
	default:
		// A variable-named link takes its text from query inputs; if the
		// value's link is gone, the site dropped the data or changed its
		// directory scheme — nothing a rename repair can express.
		return "", nil, fmt.Errorf("variable link ?%s cannot be re-anchored automatically", e.Action.EnvVar)
	}
}

func (w *repairWalk) reanchorLink(e *navmap.Edge, pageURL string, doc *htmlkit.Node) (string, *htmlkit.Node, error) {
	links := htmlkit.Links(doc, pageURL)
	// If a link with the mapped name is still on the page, the drift came
	// from fetching its target, not from a rename — re-anchoring onto a
	// different link would "repair" a site that is merely failing.
	for _, l := range links {
		if strings.EqualFold(l.Name, e.Action.LinkName) {
			return "", nil, fmt.Errorf("link %q is present but its target is failing", e.Action.LinkName)
		}
	}
	// Names other out-edges of this node still use are not candidates:
	// they already mean something else in the map.
	taken := make(map[string]bool)
	for _, other := range w.m.OutEdges(e.From) {
		if other != e && other.Action.Kind == navmap.ActFollowLink {
			taken[strings.ToLower(other.Action.LinkName)] = true
		}
	}
	type candidate struct {
		name string
		url  string
		doc  *htmlkit.Node
	}
	var matches []candidate
	seen := make(map[string]bool)
	for _, l := range links {
		key := strings.ToLower(l.Name)
		if seen[key] || taken[key] {
			continue
		}
		seen[key] = true
		u, d, drift := w.b.tryFetch(web.NewGet(l.Address))
		if drift != "" {
			continue
		}
		if !w.pageMatchesNode(e.To, u, d) {
			continue
		}
		matches = append(matches, candidate{name: l.Name, url: u, doc: d})
	}
	switch len(matches) {
	case 0:
		return "", nil, fmt.Errorf("link %q vanished and no live link leads to a page matching node %s",
			e.Action.LinkName, e.To)
	case 1:
		e.Action.LinkName = matches[0].name
		return matches[0].url, matches[0].doc, nil
	default:
		names := make([]string, len(matches))
		for i, c := range matches {
			names[i] = fmt.Sprintf("%q", c.name)
		}
		return "", nil, fmt.Errorf("link %q vanished and %s all lead to pages matching node %s — ambiguous, re-map by example",
			e.Action.LinkName, strings.Join(names, ", "), e.To)
	}
}

func (w *repairWalk) reanchorForm(e *navmap.Edge, pageURL string, doc *htmlkit.Node) (string, *htmlkit.Node, error) {
	// If the mapped form is still on the page, the drift was a lost fill
	// field or a failing submission — structural changes a rename cannot
	// express.
	if _, ok := findFormByName(doc, pageURL, e.Action.FormName); ok {
		return "", nil, fmt.Errorf("form %q is present but no longer exercisable (lost field or failing submission)",
			e.Action.FormName)
	}
	var matches []htmlkit.Form
	for _, f := range htmlkit.Forms(doc, pageURL) {
		if formAcceptsFills(f, e.Action.Fills) {
			matches = append(matches, f)
		}
	}
	switch len(matches) {
	case 0:
		return "", nil, fmt.Errorf("form %q vanished and no live form accepts its fields", e.Action.FormName)
	case 1:
	default:
		return "", nil, fmt.Errorf("form %q vanished and %d live forms accept its fields — ambiguous, re-map by example",
			e.Action.FormName, len(matches))
	}
	e.Action.FormName = matches[0].Name
	// Exercise the repaired edge the same way CheckMap does, so the walk
	// can continue past it (nil page when the sample inputs cannot fill a
	// mandatory field — repaired but unverifiable here).
	nextURL, nextDoc, drift := w.b.checkEdge(e, pageURL, doc, w.inputs)
	if drift != "" {
		return "", nil, fmt.Errorf("re-anchored form %q still drifts: %s", e.Action.FormName, drift)
	}
	return nextURL, nextDoc, nil
}

// formAcceptsFills reports whether the live form carries every field the
// edge's fills write.
func formAcceptsFills(f htmlkit.Form, fills []navcalc.FieldFill) bool {
	for _, fill := range fills {
		if _, ok := f.Field(fill.Field); !ok {
			return false
		}
	}
	return true
}

// pageMatchesNode reports whether a live page structurally matches a map
// node: a data node's extraction must find its table (or pattern records),
// and any other node must offer every non-self-loop action its out-edges
// take — the same evidence the detection side treats as structural.
func (w *repairWalk) pageMatchesNode(id navmap.NodeID, pageURL string, doc *htmlkit.Node) bool {
	n := w.m.Node(id)
	if n == nil {
		return false
	}
	if n.IsData {
		if n.Extract.Pattern != nil {
			return len(n.Extract.Pattern.Extract(doc)) > 0
		}
		if len(n.Extract.Columns) > 0 {
			headers := make([]string, len(n.Extract.Columns))
			for i, c := range n.Extract.Columns {
				headers[i] = c.Header
			}
			return htmlkit.DataTable(doc, pageURL, headers...) != nil
		}
	}
	for _, e := range w.m.OutEdges(id) {
		if e.From == e.To {
			continue // pagination self-loops are optional
		}
		switch e.Action.Kind {
		case navmap.ActFollowLink:
			if !pageHasLink(doc, pageURL, e.Action.LinkName) {
				return false
			}
		case navmap.ActFollowVar:
			want := w.inputs[e.Action.EnvVar]
			if want != "" && !pageHasLink(doc, pageURL, want) {
				return false
			}
		case navmap.ActSubmitForm:
			f, ok := findFormByName(doc, pageURL, e.Action.FormName)
			if !ok || !formAcceptsFills(f, e.Action.Fills) {
				return false
			}
		}
	}
	return true
}

func pageHasLink(doc *htmlkit.Node, pageURL, name string) bool {
	for _, l := range htmlkit.Links(doc, pageURL) {
		if strings.EqualFold(l.Name, name) {
			return true
		}
	}
	return false
}
