package mapbuilder

import (
	"testing"

	"webbase/internal/htmlkit"
	"webbase/internal/sites"
	"webbase/internal/web"
)

func TestPageSignatureDistinguishesStructure(t *testing.T) {
	w := sites.BuildWorld()
	fetch := func(u string) string {
		resp, err := w.Server.Fetch(web.NewGet(u))
		if err != nil {
			t.Fatal(err)
		}
		return pageSignature(htmlkit.Parse(resp.Body), resp.URL)
	}
	home := fetch("http://" + sites.NewsdayHost + "/")
	auto := fetch("http://" + sites.NewsdayHost + "/auto")
	if home == auto {
		t.Error("structurally different pages share a signature")
	}
}
