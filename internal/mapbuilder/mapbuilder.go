// Package mapbuilder implements "mapping by example" (Section 7): the
// navigation map of a site is discovered while the webbase designer
// browses it, moving from page to page, filling forms and following
// links.
//
// The paper's tool intercepts browsing actions with JavaScript handlers;
// here a browsing session is an explicit event list (recorded by whatever
// front end) that the builder replays against the Web. For every page
// loaded, the builder parses it into the F-logic objects of Figure 3 and
// inserts a node; every action becomes an edge. Objects and actions
// already present are recognized and not duplicated, so mapping is
// incremental. The builder also tallies the automation statistics the
// paper reports (objects and attributes extracted automatically versus
// facts supplied manually) and detects site changes by re-crawling a map.
package mapbuilder

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/web"
)

// EventKind discriminates browsing events.
type EventKind uint8

// Browsing event kinds recorded during mapping by example.
const (
	// EvFollow: the designer clicked the link with the given text.
	EvFollow EventKind = iota
	// EvSubmit: the designer filled out and submitted a form.
	EvSubmit
	// EvMarkData: the designer declared the current page a data page and
	// supplied its extraction script (the paper: "for data pages ... the
	// designer provides an extraction script").
	EvMarkData
	// EvHint: the designer supplied a manual fact — renaming a cryptic
	// attribute, marking a text field mandatory, standardizing a domain
	// value. Hints are what the <5%-manual statistic counts.
	EvHint
	// EvRestart: the designer navigated back to the site's entry page to
	// record an alternative access path (mapping is incremental; nodes
	// already seen are reused).
	EvRestart
)

// Event is one step of a browsing session.
type Event struct {
	Kind EventKind

	// EvFollow
	LinkName string
	// BindVar, when set on EvFollow, generalizes the clicked link into a
	// variable edge: the designer indicates "this link's text is the value
	// of attribute X" (Yahoo-style link-defined attributes).
	BindVar string

	// EvSubmit
	FormName string
	Values   map[string]string // field → value typed by the designer
	// VarOf generalizes typed values: field → input attribute. Fields
	// submitted but absent from VarOf are recorded as constants.
	VarOf map[string]string

	// EvMarkData
	NodeName string
	Extract  navcalc.ExtractSpec
	// MoreLink, when set, tells the builder the named link pages through
	// the same data node (the More self-loop).
	MoreLink string

	// EvHint
	Hint string
}

// Session is a recorded mapping-by-example browsing session.
type Session struct {
	Relation string // the VPS relation being mapped
	StartURL string
	// StartVar, when non-empty, declares that the map is entered through a
	// URL supplied at query time by the named input attribute (e.g.
	// newsdayCarFeatures enters at the Url captured by newsday). The
	// session still browses from the concrete StartURL.
	StartVar string
	Schema   relation.Schema
	Events   []Event
}

// Stats reports the degree of automation achieved, the Section 7 numbers:
// "all objects that describe the navigation map (85 objects with over 600
// attributes in total) were automatically extracted. Less than 5% of the
// information in the map was added manually."
type Stats struct {
	Site        string
	PagesLoaded int
	Objects     int // F-logic objects auto-extracted from pages
	Attributes  int // attribute assertions on those objects
	ManualFacts int // designer-supplied hints and declarations
}

// ManualRatio returns the fraction of map information added manually.
func (s Stats) ManualRatio() float64 {
	total := s.Attributes + s.ManualFacts
	if total == 0 {
		return 0
	}
	return float64(s.ManualFacts) / float64(total)
}

// String renders the statistics line for the experiment harness.
func (s Stats) String() string {
	return fmt.Sprintf("%-14s pages=%-3d objects=%-4d attributes=%-5d manual=%-3d manual%%=%.1f",
		s.Site, s.PagesLoaded, s.Objects, s.Attributes, s.ManualFacts, 100*s.ManualRatio())
}

// Builder replays sessions into navigation maps.
type Builder struct {
	Fetcher web.Fetcher
}

// buildCtx tracks per-Build state: the designer facts already recorded, so
// re-stating a fact (generalizing the same field twice, re-marking a data
// page seen through another path) is not double counted — the designer
// supplies each piece of information once.
type buildCtx struct {
	facts map[string]bool
}

// manualFact counts the keyed designer fact once per Build.
func (c *buildCtx) manualFact(stats *Stats, key string) {
	if c.facts[key] {
		return
	}
	c.facts[key] = true
	stats.ManualFacts++
}

// Build replays the session and returns the constructed map with its
// automation statistics. Node identity is derived from the page's
// structural signature, so revisiting a page (e.g. the second data page
// reached through More) reuses its node instead of duplicating it.
func (b *Builder) Build(s *Session) (*navmap.Map, *Stats, error) {
	if len(s.Schema) == 0 {
		return nil, nil, fmt.Errorf("mapbuilder: session for %s has no schema", s.Relation)
	}
	m := navmap.New(s.Relation, s.StartURL, s.Schema)
	stats := &Stats{Site: s.Relation}
	ctx := &buildCtx{facts: make(map[string]bool)}

	cur, err := b.loadPage(web.NewGet(s.StartURL), m, stats)
	if err != nil {
		return nil, nil, fmt.Errorf("mapbuilder: loading start page: %w", err)
	}

	for i, ev := range s.Events {
		switch ev.Kind {
		case EvFollow:
			next, err := b.follow(m, stats, ctx, cur, ev)
			if err != nil {
				return nil, nil, fmt.Errorf("mapbuilder: event %d: %w", i, err)
			}
			cur = next
		case EvSubmit:
			next, err := b.submit(m, stats, ctx, cur, ev)
			if err != nil {
				return nil, nil, fmt.Errorf("mapbuilder: event %d: %w", i, err)
			}
			cur = next
		case EvMarkData:
			if err := b.markData(m, stats, ctx, cur, ev); err != nil {
				return nil, nil, fmt.Errorf("mapbuilder: event %d: %w", i, err)
			}
		case EvHint:
			ctx.manualFact(stats, "hint:"+ev.Hint)
		case EvRestart:
			cur, err = b.loadPage(web.NewGet(s.StartURL), m, stats)
			if err != nil {
				return nil, nil, fmt.Errorf("mapbuilder: event %d: %w", i, err)
			}
		default:
			return nil, nil, fmt.Errorf("mapbuilder: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	if s.StartVar != "" {
		m.StartURLVar = s.StartVar
		m.StartURL = ""
		stats.ManualFacts++ // declaring the entry attribute is designer input
	}
	if err := m.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mapbuilder: session for %s produced an invalid map (did the designer mark a data page?): %w", s.Relation, err)
	}
	return m, stats, nil
}

// pageCursor tracks where the replayed browsing session currently is.
type pageCursor struct {
	nodeID navmap.NodeID
	url    string
	doc    *htmlkit.Node
}

// loadPage fetches a page, converts it to F-logic objects for the
// statistics, and ensures a map node exists for it.
func (b *Builder) loadPage(req *web.Request, m *navmap.Map, stats *Stats) (*pageCursor, error) {
	resp, err := b.Fetcher.Fetch(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return nil, fmt.Errorf("page %s: status %d", req.URL, resp.Status)
	}
	doc := htmlkit.Parse(resp.Body)
	stats.PagesLoaded++

	id := navmap.NodeID(pageSignature(doc, resp.URL))
	existing := m.Node(id)
	m.AddNode(&navmap.Node{ID: id, Title: htmlkit.Title(doc)})
	if existing == nil {
		// New node: count its F-logic object representation. Section 7's
		// tool "checks whether actions and Web page objects are new before
		// adding them", so revisits contribute nothing.
		store, _ := navcalc.PageToObjects(doc, resp.URL)
		stats.Objects += store.Len()
		for _, oid := range store.Objects() {
			stats.Attributes += store.Get(oid).AttrCount()
		}
	}
	return &pageCursor{nodeID: id, url: resp.URL, doc: doc}, nil
}

func (b *Builder) follow(m *navmap.Map, stats *Stats, ctx *buildCtx, cur *pageCursor, ev Event) (*pageCursor, error) {
	var target string
	for _, l := range htmlkit.Links(cur.doc, cur.url) {
		if strings.EqualFold(l.Name, ev.LinkName) {
			target = l.Address
			break
		}
	}
	if target == "" {
		return nil, fmt.Errorf("page %s has no link %q", cur.url, ev.LinkName)
	}
	next, err := b.loadPage(web.NewGet(target), m, stats)
	if err != nil {
		return nil, err
	}
	action := navmap.Action{Kind: navmap.ActFollowLink, LinkName: ev.LinkName}
	if ev.BindVar != "" {
		// Generalizing a concrete click into a variable edge is a manual
		// fact the designer contributes.
		action = navmap.Action{Kind: navmap.ActFollowVar, EnvVar: ev.BindVar}
		ctx.manualFact(stats, "bindvar:"+string(cur.nodeID)+":"+ev.BindVar)
	}
	m.AddEdge(cur.nodeID, action, next.nodeID)
	return next, nil
}

func (b *Builder) submit(m *navmap.Map, stats *Stats, ctx *buildCtx, cur *pageCursor, ev Event) (*pageCursor, error) {
	form, ok := findFormByName(cur.doc, cur.url, ev.FormName)
	if !ok {
		return nil, fmt.Errorf("page %s has no form %q", cur.url, ev.FormName)
	}
	values := url.Values{}
	for _, fl := range form.Fields {
		if fl.Default != "" && fl.Widget != htmlkit.WidgetSubmit {
			values.Set(fl.Name, fl.Default)
		}
	}
	for f, v := range ev.Values {
		values.Set(f, v)
	}
	next, err := b.loadPage(web.NewSubmit(form.Action, form.Method, values), m, stats)
	if err != nil {
		return nil, err
	}
	// Generalize: fields the designer mapped to input attributes become
	// variable fills; others are recorded as the constants typed.
	var fills []navcalc.FieldFill
	for _, f := range sortedFieldNames(ev.Values) {
		if attr, ok := ev.VarOf[f]; ok {
			fills = append(fills, navcalc.Fill(f, attr))
			// Naming the attribute is designer input, supplied once.
			ctx.manualFact(stats, "fill:"+ev.FormName+":"+f+":"+attr)
		} else {
			fills = append(fills, navcalc.FillConst(f, ev.Values[f]))
		}
	}
	m.AddEdge(cur.nodeID, navmap.Action{
		Kind: navmap.ActSubmitForm, FormName: ev.FormName, Fills: fills,
	}, next.nodeID)
	return next, nil
}

func (b *Builder) markData(m *navmap.Map, stats *Stats, ctx *buildCtx, cur *pageCursor, ev Event) error {
	n := m.Node(cur.nodeID)
	if n == nil {
		return fmt.Errorf("current node missing")
	}
	n.IsData = true
	n.Extract = ev.Extract
	// The extraction script is designer-supplied information: one fact per
	// column mapping, counted once per node even when the page is marked
	// again after being reached along another path.
	for _, c := range ev.Extract.Columns {
		ctx.manualFact(stats, "extract:"+string(cur.nodeID)+":"+c.Attr)
	}
	for _, lc := range ev.Extract.LinkCols {
		ctx.manualFact(stats, "extract:"+string(cur.nodeID)+":"+lc.Attr)
	}
	for _, ec := range ev.Extract.EnvCols {
		ctx.manualFact(stats, "extract:"+string(cur.nodeID)+":"+ec.Attr)
	}
	if ev.NodeName != "" {
		n.Title = ev.NodeName
	}
	if ev.MoreLink != "" {
		m.AddEdge(cur.nodeID, navmap.Action{Kind: navmap.ActFollowLink, LinkName: ev.MoreLink}, cur.nodeID)
		ctx.manualFact(stats, "more:"+string(cur.nodeID))
	}
	return nil
}

func findFormByName(doc *htmlkit.Node, base, name string) (htmlkit.Form, bool) {
	forms := htmlkit.Forms(doc, base)
	if name == "" && len(forms) > 0 {
		return forms[0], true
	}
	for _, f := range forms {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return htmlkit.Form{}, false
}

func sortedFieldNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pageSignature computes a structural identity for a page: its URL path
// (without query) plus the names of its forms and the shape of its tables.
// Two data pages of the same listing (page 1, page 2) share a signature
// and therefore a map node, while structurally different pages do not.
func pageSignature(doc *htmlkit.Node, pageURL string) string {
	var parts []string
	if u, err := url.Parse(pageURL); err == nil {
		parts = append(parts, u.Path)
	} else {
		parts = append(parts, pageURL)
	}
	for _, f := range htmlkit.Forms(doc, pageURL) {
		fields := make([]string, 0, len(f.Fields))
		for _, fl := range f.Fields {
			fields = append(fields, fl.Name)
		}
		sort.Strings(fields)
		parts = append(parts, "form:"+f.Name+"("+strings.Join(fields, ",")+")")
	}
	for _, tbl := range htmlkit.Tables(doc) {
		if len(tbl) > 0 {
			header := append([]string(nil), tbl[0]...)
			sort.Strings(header)
			parts = append(parts, "table:"+strings.Join(header, ","))
		}
	}
	return strings.Join(parts, "|")
}
