package vps

import (
	"fmt"

	"webbase/internal/carmaps"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
)

// handleSpec declares one handle of the standard used-car VPS (Table 3 of
// the paper, extended to all twelve sites).
type handleSpec struct {
	relation  string
	mandatory []string
	selection []string
}

// standardHandles is the Table 3 analogue for the simulated Web. Several
// relations deliberately carry more than one handle with different
// mandatory sets (the paper: "there can be several handles for the same
// relation").
var standardHandles = []handleSpec{
	{"newsday", []string{"Make"}, []string{"Make", "Model"}},
	{"newsday", []string{"Make", "Model"}, []string{"Make", "Model"}},
	{"newsdayCarFeatures", []string{"Url"}, []string{"Url"}},
	{"nyTimes", []string{"Make"}, []string{"Make", "Model"}},
	{"newYorkDaily", []string{"Make"}, []string{"Make"}},
	{"carPoint", []string{"Make"}, []string{"Make", "Model", "ZipCode"}},
	{"autoWeb", []string{"Make"}, []string{"Make", "Model"}},
	{"wwWheels", []string{"Make"}, []string{"Make", "Model"}},
	{"autoConnect", []string{"Make", "Condition"}, []string{"Make", "Model", "Condition"}},
	{"yahooCars", []string{"Make", "Model"}, []string{"Make", "Model"}},
	{"kellys", []string{"Make", "Model", "Condition"}, []string{"Make", "Model", "Year", "Condition"}},
	{"carAndDriver", []string{"Make"}, []string{"Make"}},
	{"carReviews", []string{"Make", "Model"}, []string{"Make", "Model"}},
	{"carFinance", []string{"ZipCode"}, []string{"ZipCode", "Duration"}},
}

// StandardRegistry builds the VPS of the used-car webbase: every relation
// of the standard navigation maps, with the handles above. Expressions are
// derived from the maps automatically.
func StandardRegistry() (*Registry, error) {
	maps := carmaps.AllMaps()
	reg := NewRegistry()
	exprs := make(map[string]*navcalc.Expression, len(maps))
	for name, m := range maps {
		expr, err := navmap.Translate(m)
		if err != nil {
			return nil, fmt.Errorf("vps: deriving expression for %s: %w", name, err)
		}
		if err := reg.Declare(name, m.Schema); err != nil {
			return nil, err
		}
		// Record the source map so the self-healing repair worker can
		// re-check it against the live site and hot-swap a fixed copy.
		if err := reg.SetBaseMap(name, m); err != nil {
			return nil, err
		}
		exprs[name] = expr
	}
	for _, spec := range standardHandles {
		expr, ok := exprs[spec.relation]
		if !ok {
			return nil, fmt.Errorf("vps: handle spec references unknown map %q", spec.relation)
		}
		if err := reg.AddHandle(&Handle{
			Relation:  spec.relation,
			Mandatory: relation.NewAttrSet(spec.mandatory...),
			Selection: relation.NewAttrSet(spec.selection...),
			Expr:      expr,
		}); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
