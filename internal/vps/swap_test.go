package vps

import (
	"context"
	"errors"
	"sync"
	"testing"

	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/web"
)

// repairedNewsdayMap returns the newsday map re-anchored onto a renamed
// home-page link, plus the rewrite that makes the live site match it.
func repairedNewsdayMap(t *testing.T, reg *Registry) (*navmap.Map, web.Rewrite) {
	t.Helper()
	m := reg.CurrentMap("newsday")
	if m == nil {
		t.Fatal("newsday has no base map")
	}
	repaired := m.Clone()
	for _, e := range repaired.Edges() {
		if e.Action.LinkName == "Automobiles" {
			e.Action.LinkName = "Cars and Trucks"
		}
	}
	return repaired, web.Rewrite{Old: ">Automobiles<", New: ">Cars and Trucks<"}
}

// TestSwapMapServesNewExpression: after a swap, PopulateContext navigates
// with the repaired map (against the redesigned site) and MapVersion
// reports the new generation with the repaired map's fingerprint.
func TestSwapMapServesNewExpression(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	repaired, rw := repairedNewsdayMap(t, reg)
	rd := &web.Redesign{
		Inner:    sites.BuildWorld().Server,
		Rewrites: map[string][]web.Rewrite{sites.NewsdayHost: {rw}},
	}
	rd.Activate()

	// Old map against the redesigned site: drift.
	_, _, err = reg.Populate(rd, "newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if !web.IsDrift(err) {
		t.Fatalf("old map on redesigned site: IsDrift=false: %v", err)
	}

	version, err := reg.SwapMap("newsday", repaired)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Errorf("first swap version = %d, want 2", version)
	}
	if gotV, gotFP := reg.MapVersion("newsday"); gotV != 2 || gotFP != navmap.Fingerprint(repaired) {
		t.Errorf("MapVersion = (%d, %s), want (2, %s)", gotV, gotFP, navmap.Fingerprint(repaired))
	}
	if reg.CurrentMap("newsday") != repaired {
		t.Error("CurrentMap is not the swapped-in map")
	}

	rel, _, err := reg.Populate(rd, "newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("repaired map returned no tuples")
	}
	// A second swap increments the generation.
	if version, err = reg.SwapMap("newsday", repaired.Clone()); err != nil || version != 3 {
		t.Errorf("second swap = (%d, %v), want (3, nil)", version, err)
	}
}

// TestSwapMapValidatesBeforeInstall: an invalid map or one whose schema
// no longer matches the relation is rejected with the registry untouched
// — a swap is all-or-nothing.
func TestSwapMapValidatesBeforeInstall(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	// Unknown relation.
	if _, err := reg.SwapMap("nope", navmap.New("nope", "http://x/", relation.NewSchema("A"))); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: %v", err)
	}
	// Structurally broken map (no nodes): Validate must refuse it.
	broken := navmap.New("newsday", "http://"+sites.NewsdayHost+"/",
		relation.NewSchema("Make", "Model", "Year", "Price", "Contact", "Url"))
	if _, err := reg.SwapMap("newsday", broken); err == nil {
		t.Error("invalid map swapped in")
	}
	// Wrong schema: a valid map for a different relation.
	wrongSchema := reg.CurrentMap("kellys")
	if wrongSchema == nil {
		t.Fatal("kellys has no base map")
	}
	if _, err := reg.SwapMap("newsday", wrongSchema); err == nil {
		t.Error("schema-mismatched map swapped in")
	}
	// All rejected: still serving the base map.
	if v, _ := reg.MapVersion("newsday"); v != 1 {
		t.Errorf("failed swaps moved the version to %d", v)
	}
}

// TestSwapDuringConcurrentQueries: queries running while the map is
// swapped never error and never see a torn state — each invocation reads
// the override pointer once and finishes on whichever map it started
// with. Run with -race.
func TestSwapDuringConcurrentQueries(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	repaired, rw := repairedNewsdayMap(t, reg)
	// The site serves BOTH designs here (rewrite inactive), so old-map and
	// new-map navigations both succeed; what's under test is the
	// concurrency of the swap, not the drift.
	_ = rw
	w := sites.BuildWorld()
	inputs := map[string]relation.Value{"Make": v("ford"), "Model": v("escort")}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, _, err := reg.PopulateContext(context.Background(), w.Server, "newsday", inputs)
				if err != nil {
					t.Errorf("query during swap failed: %v", err)
					return
				}
				if rel.Len() == 0 {
					t.Error("query during swap returned no tuples")
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := reg.SwapMap("newsday", repaired.Clone()); err != nil {
			t.Errorf("swap %d failed: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if v, _ := reg.MapVersion("newsday"); v != 51 {
		t.Errorf("final version = %d, want 51", v)
	}
}

// TestQuarantinedHostShortCircuits: a host in the context's quarantine
// snapshot is refused before any fetch, with a drift-classified error, so
// the owning object degrades as "drift" (not outage) without touching the
// site; other hosts are unaffected.
func TestQuarantinedHostShortCircuits(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	var fetches int
	counting := web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		fetches++
		return sitesWorld.Fetch(req)
	})
	ctx := ContextWithQuarantine(context.Background(),
		map[string]bool{sites.NewsdayHost: true})
	_, _, err = reg.PopulateContext(ctx, counting, "newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if !web.IsDrift(err) {
		t.Fatalf("quarantined host: IsDrift=false: %v", err)
	}
	if fetches != 0 {
		t.Errorf("quarantined host was fetched %d times", fetches)
	}
	// Another host under the same snapshot answers normally.
	rel, _, err := reg.PopulateContext(ctx, counting, "newYorkDaily", map[string]relation.Value{
		"Make": v("ford")})
	if err != nil || rel.Len() == 0 {
		t.Fatalf("unquarantined host failed: %v (rows=%d)", err, rel.Len())
	}
	// An empty snapshot is a no-op context.
	if got := ContextWithQuarantine(context.Background(), nil); got != context.Background() {
		t.Error("empty quarantine set should not wrap the context")
	}
}

var sitesWorld = sites.BuildWorld().Server
