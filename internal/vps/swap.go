package vps

import (
	"context"
	"fmt"

	"webbase/internal/navcalc"
	"webbase/internal/navmap"
)

// This file is the hot-swap half of the self-healing subsystem: the
// registry can atomically replace a relation's navigation map (and the
// expression translated from it) while queries are running. Swapping is
// copy-on-write — PopulateContext loads the override pointer once per
// handle invocation — so the query path takes no locks and an in-flight
// query finishes on the map it started with.

// MapOverride is a repaired navigation map installed over a relation's
// base map, together with its translated expression and provenance.
type MapOverride struct {
	Map         *navmap.Map
	Expr        *navcalc.Expression
	Version     int    // 1 is the base map; each swap increments
	Fingerprint string // navmap.Fingerprint of Map
}

// SetBaseMap records the navigation map a relation's handles were
// translated from. Repair workers read it back with CurrentMap to know
// what to re-check against the live site.
func (r *Registry) SetBaseMap(name string, m *navmap.Map) error {
	ri, ok := r.relations[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	ri.baseMap = m
	return nil
}

// CurrentMap returns the navigation map the relation is currently served
// from: the latest swapped-in override, or the base map (nil when the
// relation was registered without one).
func (r *Registry) CurrentMap(name string) *navmap.Map {
	ri, ok := r.relations[name]
	if !ok {
		return nil
	}
	if ov := ri.override.Load(); ov != nil {
		return ov.Map
	}
	return ri.baseMap
}

// MapVersion reports which map generation the relation currently serves
// from (1 = the base map) and its fingerprint ("" for a base map that was
// never swapped).
func (r *Registry) MapVersion(name string) (int, string) {
	ri, ok := r.relations[name]
	if !ok {
		return 0, ""
	}
	if ov := ri.override.Load(); ov != nil {
		return ov.Version, ov.Fingerprint
	}
	return 1, ""
}

// SwapMap atomically installs a repaired navigation map for the relation.
// The map is validated and translated before the pointer moves, so a swap
// either fully succeeds or changes nothing; queries already executing the
// old expression are unaffected. Returns the new map version.
func (r *Registry) SwapMap(name string, m *navmap.Map) (int, error) {
	ri, ok := r.relations[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("vps: swapping map for %s: %w", name, err)
	}
	expr, err := navmap.Translate(m)
	if err != nil {
		return 0, fmt.Errorf("vps: swapping map for %s: %w", name, err)
	}
	if !expr.Schema.EqualUnordered(ri.Schema) {
		return 0, fmt.Errorf("vps: swapping map for %s: map schema %v ≠ relation schema %v",
			name, expr.Schema, ri.Schema)
	}
	version := 2
	if prev := ri.override.Load(); prev != nil {
		version = prev.Version + 1
	}
	ri.override.Store(&MapOverride{
		Map:         m,
		Expr:        expr,
		Version:     version,
		Fingerprint: navmap.Fingerprint(m),
	})
	return version, nil
}

// RestoreMap installs a previously persisted repaired map as the
// relation's override, preserving the map version it was healed at — a
// restart must not rewind MapVersion, or a fleet member would re-announce
// an old generation. It shares SwapMap's validate/translate/schema-check
// discipline (a corrupt or mismatched persisted map changes nothing), and
// is meant for boot time, before queries run.
func (r *Registry) RestoreMap(name string, m *navmap.Map, version int) error {
	ri, ok := r.relations[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	if version < 2 {
		return fmt.Errorf("vps: restoring map for %s: version %d is not a swap generation (≥ 2)", name, version)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("vps: restoring map for %s: %w", name, err)
	}
	expr, err := navmap.Translate(m)
	if err != nil {
		return fmt.Errorf("vps: restoring map for %s: %w", name, err)
	}
	if !expr.Schema.EqualUnordered(ri.Schema) {
		return fmt.Errorf("vps: restoring map for %s: map schema %v ≠ relation schema %v",
			name, expr.Schema, ri.Schema)
	}
	if prev := ri.override.Load(); prev != nil && prev.Version >= version {
		return fmt.Errorf("vps: restoring map for %s: version %d is not newer than installed %d",
			name, version, prev.Version)
	}
	ri.override.Store(&MapOverride{
		Map:         m,
		Expr:        expr,
		Version:     version,
		Fingerprint: navmap.Fingerprint(m),
	})
	return nil
}

type quarantineKey struct{}

// ContextWithQuarantine attaches the set of quarantined hosts consulted
// by PopulateContext. The caller snapshots the set once at query start —
// mid-query health transitions must not change a running query's
// behavior, or outcomes would depend on goroutine scheduling.
func ContextWithQuarantine(ctx context.Context, hosts map[string]bool) context.Context {
	if len(hosts) == 0 {
		return ctx
	}
	return context.WithValue(ctx, quarantineKey{}, hosts)
}

// QuarantineFrom returns the quarantined-host snapshot (nil when none).
func QuarantineFrom(ctx context.Context) map[string]bool {
	m, _ := ctx.Value(quarantineKey{}).(map[string]bool)
	return m
}
