// Package vps implements the Virtual Physical Schema layer (Section 3):
// the lowest layer of the webbase, which represents "all the data there is
// to see by filing requests to the server" and provides navigation
// independence to the layers above.
//
// Each VPS relation is populated by executing a navigation expression; a
// relation can only be accessed through a handle
//
//	H = <mandatory-attrs, selection-attrs, R, expression>
//
// that requires values for its mandatory attributes before the expression
// can be invoked. Several handles may exist per relation, with different
// mandatory sets; all handles for a relation must agree (invoking any two
// with the same sufficient inputs yields the same result).
package vps

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/trace"
	"webbase/internal/web"
)

// Handle is the access descriptor of a VPS relation.
type Handle struct {
	Relation  string
	Mandatory relation.AttrSet // minimum inputs required to invoke
	Selection relation.AttrSet // all inputs the expression can forward (⊇ Mandatory)
	Expr      *navcalc.Expression
}

// String renders the handle as the paper's quadruple.
func (h *Handle) String() string {
	return fmt.Sprintf("⟨%s, %s, %s, %s⟩", h.Mandatory, h.Selection, h.Relation, h.Expr.Name)
}

// Invocable reports whether the handle can be invoked with the given
// inputs: every mandatory attribute has a value.
func (h *Handle) Invocable(inputs map[string]relation.Value) bool {
	for a := range h.Mandatory {
		v, ok := inputs[a]
		if !ok || v.IsNull() {
			return false
		}
	}
	return true
}

// usefulness counts how many provided inputs the handle can forward — the
// registry prefers handles that push more selection attributes to the
// server ("these attributes are eventually passed to the various Web
// servers who use these attributes to return more specific answers").
func (h *Handle) usefulness(inputs map[string]relation.Value) int {
	n := 0
	for a := range h.Selection {
		if v, ok := inputs[a]; ok && !v.IsNull() {
			n++
		}
	}
	return n
}

// RelationInfo describes one VPS relation: its schema and its handles.
type RelationInfo struct {
	Name    string
	Schema  relation.Schema
	Handles []*Handle

	// baseMap is the navigation map the relation's handles were translated
	// from (nil for relations registered without one). It is what repair
	// re-checks against the live site.
	baseMap *navmap.Map
	// override, when non-nil, carries a repaired navigation map and its
	// translated expression. It is a copy-on-write pointer: queries load
	// it once per handle invocation and never take a lock, so an in-flight
	// query finishes on the map it started with while new invocations see
	// the repaired one.
	override atomic.Pointer[MapOverride]
}

// Bindings returns the relation's alternative binding sets — one mandatory
// attribute set per handle. These feed the binding propagation of the
// logical layer (Section 5).
func (ri *RelationInfo) Bindings() []relation.AttrSet {
	out := make([]relation.AttrSet, len(ri.Handles))
	for i, h := range ri.Handles {
		out[i] = h.Mandatory.Clone()
	}
	return out
}

// Registry is the virtual physical schema: the set of VPS relations with
// their handles.
type Registry struct {
	relations map[string]*RelationInfo
}

// NewRegistry returns an empty VPS.
func NewRegistry() *Registry {
	return &Registry{relations: make(map[string]*RelationInfo)}
}

// Errors reported by the registry.
var (
	ErrUnknownRelation = errors.New("vps: unknown relation")
	ErrNoUsableHandle  = errors.New("vps: no handle invocable with the given inputs")
)

// Declare registers a relation schema. Declaring twice with a different
// schema is an error.
func (r *Registry) Declare(name string, schema relation.Schema) error {
	if ri, ok := r.relations[name]; ok {
		if !ri.Schema.Equal(schema) {
			return fmt.Errorf("vps: relation %s already declared with schema %v", name, ri.Schema)
		}
		return nil
	}
	r.relations[name] = &RelationInfo{Name: name, Schema: schema.Clone()}
	return nil
}

// AddHandle attaches a handle to its relation, enforcing the paper's
// constraints: mandatory ⊆ selection, selection attributes drawn from the
// relation schema, and distinct mandatory sets across the relation's
// handles ("different handles for the same relation must use different
// sets of mandatory attributes").
func (r *Registry) AddHandle(h *Handle) error {
	ri, ok := r.relations[h.Relation]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, h.Relation)
	}
	if !h.Mandatory.SubsetOf(h.Selection) {
		return fmt.Errorf("vps: handle for %s: mandatory %s ⊄ selection %s", h.Relation, h.Mandatory, h.Selection)
	}
	schemaSet := relation.SetFromSchema(ri.Schema)
	if !h.Selection.SubsetOf(schemaSet) {
		return fmt.Errorf("vps: handle for %s: selection %s not within schema %v", h.Relation, h.Selection, ri.Schema)
	}
	if !h.Expr.Schema.EqualUnordered(ri.Schema) {
		return fmt.Errorf("vps: handle for %s: expression schema %v ≠ relation schema %v", h.Relation, h.Expr.Schema, ri.Schema)
	}
	for _, other := range ri.Handles {
		if other.Mandatory.Equal(h.Mandatory) {
			return fmt.Errorf("vps: relation %s already has a handle with mandatory set %s", h.Relation, h.Mandatory)
		}
	}
	ri.Handles = append(ri.Handles, h)
	return nil
}

// Relation returns the info of the named relation.
func (r *Registry) Relation(name string) (*RelationInfo, bool) {
	ri, ok := r.relations[name]
	return ri, ok
}

// Relations returns all relation infos sorted by name.
func (r *Registry) Relations() []*RelationInfo {
	out := make([]*RelationInfo, 0, len(r.relations))
	for _, ri := range r.relations {
		out = append(out, ri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Bindings returns the alternative binding sets of the named relation.
func (r *Registry) Bindings(name string) ([]relation.AttrSet, error) {
	ri, ok := r.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	return ri.Bindings(), nil
}

// ChooseHandle picks the handle to serve the given inputs: among the
// invocable handles, the one forwarding the most selection attributes
// (ties broken by registration order).
func (r *Registry) ChooseHandle(name string, inputs map[string]relation.Value) (*Handle, error) {
	ri, ok := r.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	var best *Handle
	bestScore := -1
	for _, h := range ri.Handles {
		if !h.Invocable(inputs) {
			continue
		}
		if score := h.usefulness(inputs); score > bestScore {
			best, bestScore = h, score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: relation %s with inputs %s (bindings: %s)",
			ErrNoUsableHandle, name, inputKeys(inputs), bindingsString(ri.Bindings()))
	}
	return best, nil
}

// Populate executes the chosen handle's navigation expression and returns
// the relation restricted to the given inputs. Sites may answer more
// broadly than asked (a selection attribute the handle could not forward),
// so the result is post-filtered: every returned tuple satisfies
// tuple[a] = inputs[a] for each input attribute a in the schema.
func (r *Registry) Populate(f web.Fetcher, name string, inputs map[string]relation.Value) (*relation.Relation, *navcalc.ExecInfo, error) {
	return r.PopulateContext(context.Background(), f, name, inputs)
}

// PopulateContext is Populate with cancellation: the handle's navigation
// aborts at the next page load once ctx is done, so a cancelled query
// stops fetching promptly instead of finishing the site.
func (r *Registry) PopulateContext(ctx context.Context, f web.Fetcher, name string, inputs map[string]relation.Value) (*relation.Relation, *navcalc.ExecInfo, error) {
	h, err := r.ChooseHandle(name, inputs)
	if err != nil {
		// The failed access attempt is itself worth tracing: Benedikt &
		// Gottlob's relevance analysis needs the accesses that could not
		// be made as much as the ones that were.
		sp := trace.Start(ctx, trace.KindHandle, name+" (no usable handle)")
		sp.EndErr(err)
		return nil, nil, err
	}
	// One span per handle execution: the chosen handle is a deterministic
	// function of the inputs, so the span name is schedule-independent.
	sp := trace.Start(ctx, trace.KindHandle, fmt.Sprintf("%s%s via %s", name, h.Mandatory, h.Expr.Name))
	if sp != nil {
		ctx = trace.ContextWith(ctx, sp)
	}
	ri := r.relations[name]
	// A repaired map, once swapped in, replaces the expression for every
	// handle of the relation (all handles were translated from the one
	// map). The span carries the map version only when an override is
	// live, so the annotation marks exactly the queries that ran on a
	// repaired map.
	expr := h.Expr
	if ov := ri.override.Load(); ov != nil {
		expr = ov.Expr
		sp.Set("map-version", int64(ov.Version))
	}
	// Runtime access relevance (Benedikt, Gottlob & Senellart): when the
	// inputs this invocation would forward already violate the query's
	// WHERE clause — or the clause is statically unsatisfiable — every
	// tuple the site could return dies in a selection above, so the whole
	// navigation is skipped pre-fetch and answers ∅. The check runs before
	// the quarantine short-circuit on purpose: an irrelevant access is
	// skipped whether or not its host is healthy, so a pruned invocation
	// never contributes a degradation verdict ("pruned before failure").
	if st := prune.FromContext(ctx); st.IrrelevantInputs(inputs) {
		st.Count(prune.ReasonUnsatWhere)
		sp.Set("pruned", 1)
		sp.Label("pruned-reason", prune.ReasonUnsatWhere)
		sp.End()
		return relation.New(expr.Name, expr.Schema), nil, nil
	}
	strInputs := make(map[string]string, len(inputs))
	for a, v := range inputs {
		if !v.IsNull() {
			strInputs[a] = v.String()
		}
	}
	// Hosts quarantined by the health tracker are short-circuited with a
	// drift-classified failure before any fetch: the query degrades around
	// the site exactly as if navigation had drifted, but without paying
	// the doomed page loads. The quarantine set was snapshotted at query
	// start, so the outcome is schedule-independent.
	start := expr.StartURL
	if expr.StartURLVar != "" {
		start = strInputs[expr.StartURLVar]
	}
	if host := web.HostOf(start); host != "" && QuarantineFrom(ctx)[host] {
		err := fmt.Errorf("vps: populating %s: %w", name, web.MarkDrift(&web.HostError{
			Host: host,
			Err:  fmt.Errorf("vps: host %s is quarantined pending remap", host),
		}))
		sp.Label("quarantined", "true")
		sp.EndErr(err)
		return nil, nil, err
	}
	rel, info, err := expr.ExecuteContext(ctx, f, strInputs)
	if err != nil {
		err = fmt.Errorf("vps: populating %s: %w", name, err)
		sp.Set("fetches", countFetches(sp))
		sp.EndErr(err)
		return nil, nil, err
	}
	filtered := rel.Select(func(t relation.Tuple) bool {
		for a, v := range inputs {
			i := ri.Schema.IndexOf(a)
			if i < 0 || v.IsNull() {
				continue
			}
			if !t[i].Equal(v) {
				return false
			}
		}
		return true
	})
	if sp != nil {
		sp.Set("tuples", int64(filtered.Len()))
		sp.Set("raw-tuples", int64(rel.Len()))
		sp.Set("fetches", countFetches(sp))
		sp.End()
	}
	return filtered, info, nil
}

// countFetches counts the page-load spans navigation recorded beneath a
// handle span, so the handle line carries its fetch cost directly.
func countFetches(sp *trace.Span) int64 {
	var n int64
	sp.Walk(func(s *trace.Span) {
		if s.Kind() == trace.KindFetch {
			n++
		}
	})
	return n
}

// CheckAgreement verifies the paper's handle-agreement property on live
// data: executing every invocable handle of the relation with the same
// inputs must yield the same tuples. It returns an error describing the
// first disagreement.
func (r *Registry) CheckAgreement(f web.Fetcher, name string, inputs map[string]relation.Value) error {
	ri, ok := r.relations[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRelation, name)
	}
	strInputs := make(map[string]string, len(inputs))
	for a, v := range inputs {
		strInputs[a] = v.String()
	}
	var ref *relation.Relation
	var refHandle *Handle
	for _, h := range ri.Handles {
		if !h.Invocable(inputs) {
			continue
		}
		rel, _, err := h.Expr.Execute(f, strInputs)
		if err != nil {
			return fmt.Errorf("vps: agreement check %s: handle %s: %w", name, h, err)
		}
		if ref == nil {
			ref, refHandle = rel, h
			continue
		}
		d1, err1 := ref.Diff(rel)
		d2, err2 := rel.Diff(ref)
		if err1 != nil || err2 != nil || d1.Len() != 0 || d2.Len() != 0 {
			return fmt.Errorf("vps: handles %s and %s disagree on %s with inputs %s",
				refHandle, h, name, inputKeys(inputs))
		}
	}
	return nil
}

func inputKeys(inputs map[string]relation.Value) string {
	keys := make([]string, 0, len(inputs))
	for a := range inputs {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ", ") + "}"
}

func bindingsString(bs []relation.AttrSet) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.String()
	}
	return strings.Join(parts, " | ")
}
