package vps

import (
	"errors"
	"strings"
	"testing"

	"webbase/internal/navcalc"
	"webbase/internal/relation"
	"webbase/internal/sites"
	"webbase/internal/tlogic"
)

func v(s string) relation.Value { return relation.String(s) }

func TestStandardRegistryBuilds(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	rels := reg.Relations()
	if len(rels) != 13 {
		t.Fatalf("relations = %d, want 13", len(rels))
	}
	// Table 3 checks: kellys mandatory set.
	ri, ok := reg.Relation("kellys")
	if !ok || len(ri.Handles) != 1 {
		t.Fatalf("kellys info: %+v %v", ri, ok)
	}
	if !ri.Handles[0].Mandatory.Equal(relation.NewAttrSet("Make", "Model", "Condition")) {
		t.Errorf("kellys mandatory = %s", ri.Handles[0].Mandatory)
	}
	// newsday has two handles with distinct mandatory sets.
	nd, _ := reg.Relation("newsday")
	if len(nd.Handles) != 2 {
		t.Fatalf("newsday handles = %d", len(nd.Handles))
	}
	bs, err := reg.Bindings("newsday")
	if err != nil || len(bs) != 2 {
		t.Fatalf("newsday bindings: %v %v", bs, err)
	}
	if _, err := reg.Bindings("nope"); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: %v", err)
	}
}

func TestAddHandleValidation(t *testing.T) {
	reg := NewRegistry()
	schema := relation.NewSchema("A", "B")
	if err := reg.Declare("r", schema); err != nil {
		t.Fatal(err)
	}
	// Redeclaring with the same schema is fine; different schema errors.
	if err := reg.Declare("r", schema); err != nil {
		t.Errorf("idempotent declare failed: %v", err)
	}
	if err := reg.Declare("r", relation.NewSchema("X")); err == nil {
		t.Error("conflicting declare should fail")
	}

	expr := &navcalc.Expression{Name: "r", Schema: schema, Program: tlogic.NewProgram(), Goal: tlogic.Empty{}, StartURL: "http://x/"}
	mk := func(mand, sel []string) *Handle {
		return &Handle{Relation: "r",
			Mandatory: relation.NewAttrSet(mand...),
			Selection: relation.NewAttrSet(sel...), Expr: expr}
	}
	if err := reg.AddHandle(mk([]string{"A"}, []string{"A", "B"})); err != nil {
		t.Fatalf("valid handle rejected: %v", err)
	}
	if err := reg.AddHandle(mk([]string{"A", "B"}, []string{"A"})); err == nil {
		t.Error("mandatory ⊄ selection should fail")
	}
	if err := reg.AddHandle(mk([]string{"Z"}, []string{"Z"})); err == nil {
		t.Error("selection outside schema should fail")
	}
	if err := reg.AddHandle(mk([]string{"A"}, []string{"A"})); err == nil {
		t.Error("duplicate mandatory set should fail")
	}
	other := &Handle{Relation: "ghost", Mandatory: relation.NewAttrSet(), Selection: relation.NewAttrSet(), Expr: expr}
	if err := reg.AddHandle(other); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: %v", err)
	}
	// Expression schema mismatch.
	bad := &Handle{Relation: "r", Mandatory: relation.NewAttrSet("B"), Selection: relation.NewAttrSet("B"),
		Expr: &navcalc.Expression{Name: "r", Schema: relation.NewSchema("A"), Program: tlogic.NewProgram(), Goal: tlogic.Empty{}}}
	if err := reg.AddHandle(bad); err == nil || !strings.Contains(err.Error(), "expression schema") {
		t.Errorf("schema mismatch: %v", err)
	}
}

func TestChooseHandlePrefersMoreSelective(t *testing.T) {
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	// With only Make, the {Make} handle is the only choice.
	h, err := reg.ChooseHandle("newsday", map[string]relation.Value{"Make": v("ford")})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mandatory.Equal(relation.NewAttrSet("Make")) {
		t.Errorf("chose %s", h)
	}
	// With Make+Model both handles are invocable and forward equally;
	// either is acceptable, but a choice must be made.
	if _, err := reg.ChooseHandle("newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")}); err != nil {
		t.Fatal(err)
	}
	// No inputs → no invocable handle.
	_, err = reg.ChooseHandle("newsday", nil)
	if !errors.Is(err, ErrNoUsableHandle) {
		t.Errorf("err = %v", err)
	}
	_, err = reg.ChooseHandle("ghost", nil)
	if !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("err = %v", err)
	}
}

func TestPopulateAgainstWorld(t *testing.T) {
	w := sites.BuildWorld()
	reg, err := StandardRegistry()
	if err != nil {
		t.Fatal(err)
	}
	rel, info, err := reg.Populate(w.Server, "newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.NewsdayHost].ByMakeModel("ford", "escort"))
	if rel.Len() != want {
		t.Errorf("populated %d, want %d", rel.Len(), want)
	}
	if info.Tuples != want {
		t.Errorf("info.Tuples = %d", info.Tuples)
	}
}

func TestPopulatePostFilters(t *testing.T) {
	// newYorkDaily's handle can only forward Make; asking with Model too
	// must still return only matching tuples (client-side restriction).
	w := sites.BuildWorld()
	reg, _ := StandardRegistry()
	rel, _, err := reg.Populate(w.Server, "newYorkDaily", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if err != nil {
		t.Fatal(err)
	}
	want := len(w.Datasets[sites.NewYorkDailyHost].ByMakeModel("ford", "escort"))
	if rel.Len() != want {
		t.Errorf("populated %d, want %d (post-filter on Model)", rel.Len(), want)
	}
	for _, tp := range rel.Tuples() {
		md, _ := rel.Get(tp, "Model")
		if md.Str() != "escort" {
			t.Fatalf("post-filter leaked: %v", tp)
		}
	}
}

func TestPopulateYearIntFilter(t *testing.T) {
	// Kellys with a Year input: the site forwards it; result is one row.
	w := sites.BuildWorld()
	reg, _ := StandardRegistry()
	rel, _, err := reg.Populate(w.Server, "kellys", map[string]relation.Value{
		"Make": v("jaguar"), "Model": v("xj6"),
		"Year": relation.Int(1994), "Condition": v("good")})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("rows = %d", rel.Len())
	}
	bb, _ := rel.Get(rel.Tuples()[0], "BBPrice")
	if int(bb.IntVal()) != sites.BlueBook("jaguar", "xj6", 1994, "good") {
		t.Errorf("bbprice = %v", bb)
	}
}

// TestPopulateEmptyAnswerIsNotFailure: a search that matches nothing still
// reaches a data page (with an empty table); the relation is empty, the
// navigation does not fail. (Regression: empty data tables used to be
// indistinguishable from "not a data page".)
func TestPopulateEmptyAnswerIsNotFailure(t *testing.T) {
	w := sites.BuildWorld()
	reg, _ := StandardRegistry()
	// Find a make/model pair a dealer site has no ads for.
	ds := w.Datasets[sites.WWWheelsHost]
	var mk, md string
	for m, models := range sites.Catalog {
		for _, mod := range models {
			if len(ds.ByMakeModel(m, mod)) == 0 {
				mk, md = m, mod
			}
		}
	}
	if mk == "" {
		t.Skip("dataset covers every make/model; enlarge catalog to test")
	}
	rel, _, err := reg.Populate(w.Server, "wwWheels", map[string]relation.Value{
		"Make": v(mk), "Model": v(md)})
	if err != nil {
		t.Fatalf("empty search should succeed: %v", err)
	}
	if rel.Len() != 0 {
		t.Errorf("rows = %d, want 0", rel.Len())
	}
}

func TestPopulateNoHandle(t *testing.T) {
	w := sites.BuildWorld()
	reg, _ := StandardRegistry()
	_, _, err := reg.Populate(w.Server, "kellys", map[string]relation.Value{"Make": v("jaguar")})
	if !errors.Is(err, ErrNoUsableHandle) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleAgreement(t *testing.T) {
	// The paper's agreement property: newsday's {Make} and {Make, Model}
	// handles must return the same tuples when both are given Make+Model.
	w := sites.BuildWorld()
	reg, _ := StandardRegistry()
	err := reg.CheckAgreement(w.Server, "newsday", map[string]relation.Value{
		"Make": v("ford"), "Model": v("escort")})
	if err != nil {
		t.Errorf("handles disagree: %v", err)
	}
	if err := reg.CheckAgreement(w.Server, "ghost", nil); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleString(t *testing.T) {
	reg, _ := StandardRegistry()
	ri, _ := reg.Relation("kellys")
	s := ri.Handles[0].String()
	for _, want := range []string{"kellys", "Condition", "⟨"} {
		if !strings.Contains(s, want) {
			t.Errorf("handle rendering missing %q: %s", want, s)
		}
	}
}
