package htmlkit

import (
	"reflect"
	"strings"
	"testing"
)

const newsdayLike = `
<html><head><title>Classifieds</title></head><body>
<a href="/auto">Automobiles</a>
<a href="http://other.example/x">Elsewhere</a>
<form name="f1" action="/cgi-bin/nclassy" method="POST">
  <select name="make">
    <option value="ford">Ford</option>
    <option value="jaguar" selected>Jaguar</option>
  </select>
  <input type="text" name="model" maxlength="20">
  <input type="radio" name="cond" value="new">
  <input type="radio" name="cond" value="used" checked>
  <input type="checkbox" name="pics" value="yes">
  <input type="hidden" name="region" value="nyc">
  <input type="submit" name="go" value="Search">
</form>
</body></html>`

func TestLinks(t *testing.T) {
	doc := Parse([]byte(newsdayLike))
	links := Links(doc, "http://newsday.example/classified/")
	if len(links) != 2 {
		t.Fatalf("links: %d", len(links))
	}
	if links[0].Name != "Automobiles" || links[0].Address != "http://newsday.example/auto" {
		t.Errorf("link 0 = %+v", links[0])
	}
	if links[1].Address != "http://other.example/x" {
		t.Errorf("absolute link mangled: %+v", links[1])
	}
}

func TestForms(t *testing.T) {
	doc := Parse([]byte(newsdayLike))
	forms := Forms(doc, "http://newsday.example/classified/")
	if len(forms) != 1 {
		t.Fatalf("forms: %d", len(forms))
	}
	f := forms[0]
	if f.Name != "f1" || f.Method != "post" {
		t.Errorf("form meta: %+v", f)
	}
	if f.Action != "http://newsday.example/cgi-bin/nclassy" {
		t.Errorf("action = %q", f.Action)
	}

	mk, ok := f.Field("make")
	if !ok || mk.Widget != WidgetSelect {
		t.Fatalf("make field: %+v %v", mk, ok)
	}
	if !reflect.DeepEqual(mk.Domain, []string{"ford", "jaguar"}) {
		t.Errorf("make domain = %v", mk.Domain)
	}
	if mk.Default != "jaguar" {
		t.Errorf("make default = %q", mk.Default)
	}

	md, _ := f.Field("model")
	if md.Widget != WidgetText || md.MaxLength != 20 || md.Mandatory {
		t.Errorf("model field: %+v", md)
	}

	cond, _ := f.Field("cond")
	if cond.Widget != WidgetRadio || !cond.Mandatory {
		t.Errorf("radio group should be one mandatory field: %+v", cond)
	}
	if !reflect.DeepEqual(cond.Domain, []string{"new", "used"}) {
		t.Errorf("radio domain = %v", cond.Domain)
	}
	if cond.Default != "used" {
		t.Errorf("radio default = %q", cond.Default)
	}

	if got := f.MandatoryFields(); !reflect.DeepEqual(got, []string{"cond"}) {
		t.Errorf("mandatory = %v", got)
	}
	opt := f.OptionalFields()
	want := map[string]bool{"make": true, "model": true, "pics": true, "region": true}
	if len(opt) != len(want) {
		t.Errorf("optional = %v", opt)
	}
	for _, o := range opt {
		if !want[o] {
			t.Errorf("unexpected optional field %q", o)
		}
	}
}

func TestFormRequiredAttrHint(t *testing.T) {
	doc := Parse([]byte(`<form action="/s"><input type=text name=q required></form>`))
	f := Forms(doc, "http://h/")[0]
	q, _ := f.Field("q")
	if !q.Mandatory {
		t.Error("required text field should be mandatory")
	}
}

func TestFormTextarea(t *testing.T) {
	doc := Parse([]byte(`<form action="/s"><textarea name=c>hello</textarea></form>`))
	f := Forms(doc, "http://h/")[0]
	c, ok := f.Field("c")
	if !ok || c.Widget != WidgetTextarea || c.Default != "hello" {
		t.Errorf("textarea field: %+v %v", c, ok)
	}
}

func TestTableWithHeader(t *testing.T) {
	src := `
<table><tr><th>Make</th><th>Model</th><th>Price</th></tr>
<tr><td>ford</td><td>escort</td><td>$3,000</td></tr>
<tr><td>jaguar</td><td>xj6</td><td>$15,000</td></tr></table>`
	rows := TableWithHeader(Parse([]byte(src)), "make", "price")
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0]["make"] != "ford" || rows[1]["price"] != "$15,000" {
		t.Errorf("rows = %v", rows)
	}
	if got := TableWithHeader(Parse([]byte(src)), "nonexistent"); got != nil {
		t.Errorf("expected nil for missing header, got %v", got)
	}
}

func TestNestedLayoutTablesDoNotLeakRows(t *testing.T) {
	// A 1990s layout: the data table lives inside a layout table cell, and
	// a data cell itself contains a decorative inner table. Outer layout
	// rows and the inner decoration must not leak into the data rows.
	src := `
<table><tr><td>sidebar</td><td>
  <table>
    <tr><th>Make</th><th>Price</th></tr>
    <tr><td>ford</td><td>$3,000</td></tr>
    <tr><td><table><tr><td>badge</td></tr></table>jaguar</td><td>$15,000</td></tr>
  </table>
</td></tr></table>`
	doc := Parse([]byte(src))
	rows := DataTable(doc, "http://h/", "Make", "Price")
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(rows), rows)
	}
	if rows[0].Cells["make"] != "ford" || rows[1].Cells["price"] != "$15,000" {
		t.Errorf("rows = %v", rows)
	}
	if !strings.Contains(rows[1].Cells["make"], "jaguar") {
		t.Errorf("inner decoration swallowed the cell text: %v", rows[1])
	}
	// Tables(): first (outer) table has one row of two layout cells; the
	// data table reports its own three rows; the badge table its one.
	tbls := Tables(doc)
	if len(tbls) != 3 {
		t.Fatalf("tables = %d, want 3", len(tbls))
	}
	if len(tbls[0]) != 1 || len(tbls[1]) != 3 || len(tbls[2]) != 1 {
		t.Errorf("row counts = %d/%d/%d, want 1/3/1", len(tbls[0]), len(tbls[1]), len(tbls[2]))
	}
}

func TestResolve(t *testing.T) {
	cases := []struct{ base, ref, want string }{
		{"http://h/a/b", "c", "http://h/a/c"},
		{"http://h/a/", "c", "http://h/a/c"},
		{"http://h/a", "/x", "http://h/x"},
		{"http://h/a", "http://i/y", "http://i/y"},
		{"http://h/a", "?q=1", "http://h/a?q=1"},
		{"://bad", "c", "c"},
	}
	for _, c := range cases {
		if got := Resolve(c.base, c.ref); got != c.want {
			t.Errorf("Resolve(%q,%q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}
