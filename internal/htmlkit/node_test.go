package htmlkit

import (
	"testing"
	"testing/quick"
)

func TestParseTree(t *testing.T) {
	doc := Parse([]byte(`<html><head><title>T</title></head><body><p>one<p>two</body></html>`))
	if got := Title(doc); got != "T" {
		t.Errorf("Title = %q", got)
	}
	ps := doc.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("auto-close of <p> failed: %d paragraphs", len(ps))
	}
	if ps[0].Text() != "one" || ps[1].Text() != "two" {
		t.Errorf("paragraph texts: %q %q", ps[0].Text(), ps[1].Text())
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse([]byte(`<p>a<br>b<img src=x>c</p>`))
	p := doc.Find("p")
	if p == nil {
		t.Fatal("no p")
	}
	if got := p.Text(); got != "a b c" {
		t.Errorf("text = %q, want %q", got, "a b c")
	}
	if img := p.Find("img"); img == nil || len(img.Children) != 0 {
		t.Error("img should be a childless element inside p")
	}
}

func TestParseTableAutoClose(t *testing.T) {
	// 1990s-style table with no </td>/</tr>.
	src := `<table><tr><td>a<td>b<tr><td>c<td>d</table>`
	tbls := Tables(Parse([]byte(src)))
	if len(tbls) != 1 {
		t.Fatalf("tables: %d", len(tbls))
	}
	want := [][]string{{"a", "b"}, {"c", "d"}}
	got := tbls[0]
	if len(got) != 2 || got[0][0] != "a" || got[0][1] != "b" || got[1][0] != "c" || got[1][1] != "d" {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestParseMisnesting(t *testing.T) {
	// <b><i></b></i> — classic mis-nesting; must not lose text or panic.
	doc := Parse([]byte(`<b><i>x</b></i>y`))
	if got := doc.Text(); got != "x y" {
		t.Errorf("text = %q", got)
	}
}

func TestParseStrayEndTags(t *testing.T) {
	doc := Parse([]byte(`</div>hello</p></table>`))
	if got := doc.Text(); got != "hello" {
		t.Errorf("text = %q", got)
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	doc := Parse([]byte(`<html><body><div><span>deep`))
	if got := doc.Text(); got != "deep" {
		t.Errorf("text = %q", got)
	}
	if doc.Find("span") == nil {
		t.Error("span lost")
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse([]byte(`<div><p>in</p></div><p>out</p>`))
	var seen []string
	doc.Walk(func(n *Node) bool {
		if n.IsElement("div") {
			return false // prune
		}
		if n.Type == TextNode {
			seen = append(seen, n.Data)
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "out" {
		t.Errorf("seen = %v", seen)
	}
}

func TestNestedListAutoClose(t *testing.T) {
	doc := Parse([]byte(`<ul><li>a<li>b<li>c</ul>`))
	if n := len(doc.FindAll("li")); n != 3 {
		t.Errorf("li count = %d, want 3", n)
	}
	// Items must be siblings, not nested.
	ul := doc.Find("ul")
	count := 0
	for _, c := range ul.Children {
		if c.IsElement("li") {
			count++
		}
	}
	if count != 3 {
		t.Errorf("li siblings under ul = %d, want 3", count)
	}
}

// Property: Parse never panics and yields a tree whose every node's children
// point back to it, for arbitrary input.
func TestParseNeverPanicsAndIsWellFormed(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		doc := Parse(b)
		wellFormed := true
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					wellFormed = false
				}
			}
			return true
		})
		return wellFormed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
