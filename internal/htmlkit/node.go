package htmlkit

import "strings"

// NodeType discriminates tree nodes.
type NodeType uint8

// Node types in the parsed tree.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Node is one node of the lenient parse tree.
type Node struct {
	Type     NodeType
	Data     string // tag name for elements, content for text/comments
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the attribute value or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// IsElement reports whether n is an element with the given tag name.
func (n *Node) IsElement(tag string) bool {
	return n.Type == ElementNode && n.Data == tag
}

// appendChild attaches c as the last child of n.
func (n *Node) appendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Walk visits n and all descendants in document order. Returning false from
// fn prunes the subtree below the current node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns all descendant elements (including n itself) with the
// given tag name, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.IsElement(tag) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Find returns the first descendant element with the given tag, or nil.
func (n *Node) Find(tag string) *Node {
	all := n.FindAll(tag)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// Text returns the concatenated text content of the subtree, with runs of
// whitespace collapsed to single spaces and leading/trailing space trimmed.
func (n *Node) Text() string {
	var sb strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			sb.WriteString(m.Data)
			sb.WriteByte(' ')
		}
		return true
	})
	return strings.Join(strings.Fields(sb.String()), " ")
}

// voidElements never have children; their start tag is the whole element.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose lists, for each tag, the open tags that an occurrence of it
// implicitly closes. This captures the common omitted-end-tag patterns in
// 1990s HTML (e.g. successive <li>, <tr>, <td>, <option> without closers).
var autoClose = map[string][]string{
	"li":     {"li"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"option": {"option"},
	"p":      {"p"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// Parse builds a lenient parse tree from src. It never fails: unclosed
// elements are closed at end of input, stray end tags are dropped, and
// mis-nesting is repaired by popping to the nearest matching open element.
func Parse(src []byte) *Node {
	doc := &Node{Type: DocumentNode}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(src)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			top().appendChild(&Node{Type: TextNode, Data: tok.Data})
		case CommentToken:
			top().appendChild(&Node{Type: CommentNode, Data: tok.Data})
		case DoctypeToken:
			// Ignored; the webbase does not need doctype information.
		case StartTagToken, SelfClosingTagToken:
			if closes, ok := autoClose[tok.Data]; ok {
				popAutoClosed(&stack, closes)
			}
			el := &Node{Type: ElementNode, Data: tok.Data, Attrs: tok.Attrs}
			top().appendChild(el)
			if tok.Type == StartTagToken && !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Pop to the matching open element if one exists; otherwise
			// drop the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Data == tok.Data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// popAutoClosed closes the innermost run of elements named in closes. Only
// the immediate top of stack is considered at each step so that, e.g., a
// new <tr> closes an open <td> and then an open <tr>, but never escapes the
// enclosing <table>.
func popAutoClosed(stack *[]*Node, closes []string) {
	for len(*stack) > 1 {
		topName := (*stack)[len(*stack)-1].Data
		matched := false
		for _, c := range closes {
			if topName == c {
				matched = true
				break
			}
		}
		if !matched {
			return
		}
		*stack = (*stack)[:len(*stack)-1]
	}
}
