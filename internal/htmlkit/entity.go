package htmlkit

import (
	"strconv"
	"strings"
)

// namedEntities covers the entities that actually occur in the car-site
// corpus and in common faulty HTML. Unknown entities pass through verbatim,
// which is what browsers of the paper's era did.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   '\u0020',
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"mdash":  '—',
	"ndash":  '–',
	"hellip": '…',
	"middot": '·',
	"laquo":  '«',
	"raquo":  '»',
	"bull":   '•',
}

// DecodeEntities replaces HTML character references in s with their
// characters. Malformed references (no semicolon, unknown name, bad number)
// are left untouched.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			sb.WriteByte(c)
			i++
			continue
		}
		name := s[i+1 : i+semi]
		if r, ok := decodeEntityName(name); ok {
			sb.WriteRune(r)
			i += semi + 1
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

func decodeEntityName(name string) (rune, bool) {
	if name == "" {
		return 0, false
	}
	if name[0] == '#' {
		num := name[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			num, base = num[1:], 16
		}
		n, err := strconv.ParseInt(num, base, 32)
		if err != nil || n <= 0 || n > 0x10FFFF {
			return 0, false
		}
		return rune(n), true
	}
	r, ok := namedEntities[name]
	return r, ok
}

// EscapeText escapes s for inclusion as HTML text content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes s for inclusion inside a double-quoted attribute.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
