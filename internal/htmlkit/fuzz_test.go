package htmlkit

import (
	"strings"
	"testing"
)

// FuzzParse drives the lenient parser with arbitrary bytes: it must never
// panic, must terminate, and must produce a tree whose parent pointers are
// consistent. Run with `go test -fuzz=FuzzParse ./internal/htmlkit` to
// search beyond the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body>hello</body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<a href='x",
		"<p><b><i>misnested</b></i>",
		"<!DOCTYPE html><!-- c --><script>if(a<b){}</script>",
		"<form><select><option>x<option value='y'>z</select></form>",
		"&amp;&#65;&#x41;&nope;&",
		"<<<>>><//><1>",
		strings.Repeat("<div>", 100),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc := Parse(data)
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					t.Fatal("broken parent pointer")
				}
			}
			return true
		})
		// Extraction helpers must also be total.
		_ = Links(doc, "http://fuzz.example/")
		_ = Forms(doc, "http://fuzz.example/")
		_ = Tables(doc)
		_ = Title(doc)
	})
}

// FuzzDecodeEntities checks the decoder is total and never grows the
// input unboundedly (a decoded entity is never longer than its reference).
func FuzzDecodeEntities(f *testing.F) {
	for _, s := range []string{"&amp;", "&#65;", "&#x41;", "&bogus;", "a&b", "&&&&", "&#xffffffffff;"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeEntities(s)
		if len(out) > len(s)+4 {
			t.Fatalf("decode grew input: %d → %d", len(s), len(out))
		}
	})
}
