// Package htmlkit is a small, lenient HTML tokenizer and parser with the
// extraction helpers a webbase needs: links, forms (with widget typing) and
// tables.
//
// The paper notes that "the main problem we face while mapping sites is the
// presence of faulty HTML, in which case the parser needs to be able to
// recover from the ill-formed documents" (Section 7). Accordingly the
// tokenizer never fails: malformed markup degrades to text or is repaired,
// and the tree builder auto-closes dangling elements.
package htmlkit

import "strings"

// TokenType discriminates tokenizer output.
type TokenType uint8

// Token types produced by the tokenizer.
const (
	TextToken TokenType = iota
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

// Attr is a single name="value" attribute on a tag. Values are entity-
// decoded; names are lower-cased.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical unit of an HTML document.
type Token struct {
	Type  TokenType
	Data  string // tag name (lower-cased), text content, or comment body
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Tokenizer walks an HTML document byte by byte. It is resilient: any input
// produces a token stream; garbage becomes text.
type Tokenizer struct {
	src []byte
	pos int
	// rawEnd holds the closing tag we are looking for while inside a raw
	// text element (script/style), or "" otherwise.
	rawEnd string
}

// NewTokenizer returns a tokenizer over src. The tokenizer does not copy
// src; callers must not mutate it during tokenization.
func NewTokenizer(src []byte) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token and true, or a zero token and false at end of
// input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawEnd != "" {
		return z.rawText(), true
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.tag(); ok {
			return tok, true
		}
		// A lone '<' that does not open a valid construct: emit it as text
		// and continue — recovery rather than failure.
		z.pos++
		return Token{Type: TextToken, Data: "<"}, true
	}
	return z.text(), true
}

// text consumes up to the next '<'.
func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: DecodeEntities(string(z.src[start:z.pos]))}
}

// rawText consumes everything up to the matching </script> or </style>.
func (z *Tokenizer) rawText() Token {
	end := "</" + z.rawEnd
	lower := strings.ToLower(string(z.src[z.pos:]))
	idx := strings.Index(lower, end)
	var data string
	if idx < 0 {
		data = string(z.src[z.pos:])
		z.pos = len(z.src)
	} else {
		data = string(z.src[z.pos : z.pos+idx])
		z.pos += idx
	}
	z.rawEnd = ""
	// Raw text is returned verbatim (scripts are not entity-decoded).
	return Token{Type: TextToken, Data: data}
}

// tag parses a construct starting with '<'. Returns ok=false when the '<'
// does not start a tag-like construct.
func (z *Tokenizer) tag() (Token, bool) {
	src := z.src
	i := z.pos + 1
	if i >= len(src) {
		return Token{}, false
	}
	switch {
	case src[i] == '!':
		return z.markupDeclaration(), true
	case src[i] == '/':
		return z.endTag(), true
	case isAlpha(src[i]):
		return z.startTag(), true
	default:
		return Token{}, false
	}
}

// markupDeclaration handles <!-- comments --> and <!DOCTYPE ...>.
func (z *Tokenizer) markupDeclaration() Token {
	src := z.src
	if strings.HasPrefix(string(src[z.pos:]), "<!--") {
		end := strings.Index(string(src[z.pos+4:]), "-->")
		var body string
		if end < 0 {
			body = string(src[z.pos+4:]) // unterminated comment: recover
			z.pos = len(src)
		} else {
			body = string(src[z.pos+4 : z.pos+4+end])
			z.pos += 4 + end + 3
		}
		return Token{Type: CommentToken, Data: body}
	}
	// <!DOCTYPE ...> or any other <!...>: consume to '>'.
	end := indexByteFrom(src, z.pos, '>')
	var body string
	if end < 0 {
		body = string(src[z.pos+2:])
		z.pos = len(src)
	} else {
		body = string(src[z.pos+2 : end])
		z.pos = end + 1
	}
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(body)}
}

func (z *Tokenizer) endTag() Token {
	src := z.src
	i := z.pos + 2
	start := i
	for i < len(src) && isNameChar(src[i]) {
		i++
	}
	name := strings.ToLower(string(src[start:i]))
	// Skip to '>' (tolerating junk attributes on end tags).
	for i < len(src) && src[i] != '>' {
		i++
	}
	if i < len(src) {
		i++
	}
	z.pos = i
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) startTag() Token {
	src := z.src
	i := z.pos + 1
	start := i
	for i < len(src) && isNameChar(src[i]) {
		i++
	}
	name := strings.ToLower(string(src[start:i]))
	tok := Token{Type: StartTagToken, Data: name}
	for {
		// Skip whitespace.
		for i < len(src) && isSpace(src[i]) {
			i++
		}
		if i >= len(src) {
			break // unterminated tag: recover by closing it here
		}
		if src[i] == '>' {
			i++
			break
		}
		if src[i] == '/' {
			i++
			if i < len(src) && src[i] == '>' {
				i++
				tok.Type = SelfClosingTagToken
				break
			}
			continue
		}
		// Attribute name.
		aStart := i
		for i < len(src) && !isSpace(src[i]) && src[i] != '=' && src[i] != '>' && src[i] != '/' {
			i++
		}
		aName := strings.ToLower(string(src[aStart:i]))
		if aName == "" {
			i++ // stray byte; skip to make progress
			continue
		}
		// Optional value.
		for i < len(src) && isSpace(src[i]) {
			i++
		}
		val := ""
		if i < len(src) && src[i] == '=' {
			i++
			for i < len(src) && isSpace(src[i]) {
				i++
			}
			if i < len(src) && (src[i] == '"' || src[i] == '\'') {
				q := src[i]
				i++
				vStart := i
				for i < len(src) && src[i] != q {
					i++
				}
				val = string(src[vStart:i])
				if i < len(src) {
					i++ // closing quote
				}
			} else {
				vStart := i
				for i < len(src) && !isSpace(src[i]) && src[i] != '>' {
					i++
				}
				val = string(src[vStart:i])
			}
		}
		tok.Attrs = append(tok.Attrs, Attr{Name: aName, Value: DecodeEntities(val)})
	}
	z.pos = i
	if tok.Type == StartTagToken && (name == "script" || name == "style") {
		z.rawEnd = name
	}
	return tok
}

func isAlpha(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isNameChar(b byte) bool {
	return isAlpha(b) || b >= '0' && b <= '9' || b == '-' || b == '_' || b == ':'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}

func indexByteFrom(src []byte, from int, c byte) int {
	for i := from; i < len(src); i++ {
		if src[i] == c {
			return i
		}
	}
	return -1
}
