package htmlkit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	z := NewTokenizer([]byte(src))
	var out []Token
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestTokenizeBasic(t *testing.T) {
	toks := tokens(t, `<html><body class="x">Hi &amp; bye</body></html>`)
	want := []Token{
		{Type: StartTagToken, Data: "html"},
		{Type: StartTagToken, Data: "body", Attrs: []Attr{{"class", "x"}}},
		{Type: TextToken, Data: "Hi & bye"},
		{Type: EndTagToken, Data: "body"},
		{Type: EndTagToken, Data: "html"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Errorf("got %#v\nwant %#v", toks, want)
	}
}

func TestTokenizeAttrForms(t *testing.T) {
	toks := tokens(t, `<input type=text name='q' value="a b" checked>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	for name, want := range map[string]string{
		"type": "text", "name": "q", "value": "a b", "checked": "",
	} {
		if got, ok := tok.Attr(name); !ok || got != want {
			t.Errorf("attr %q = %q,%v; want %q", name, got, ok, want)
		}
	}
	if _, ok := tok.Attr("missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := tokens(t, `<br/><img src="x.gif" />`)
	if toks[0].Type != SelfClosingTagToken || toks[1].Type != SelfClosingTagToken {
		t.Errorf("expected self-closing tokens, got %#v", toks)
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := tokens(t, `<!DOCTYPE html><!-- note -->x`)
	if toks[0].Type != DoctypeToken || toks[0].Data != "DOCTYPE html" {
		t.Errorf("doctype: %#v", toks[0])
	}
	if toks[1].Type != CommentToken || toks[1].Data != " note " {
		t.Errorf("comment: %#v", toks[1])
	}
	if toks[2].Type != TextToken || toks[2].Data != "x" {
		t.Errorf("text: %#v", toks[2])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := tokens(t, `<script>if (a < b) { x("&amp;") }</script>after`)
	if toks[0].Data != "script" {
		t.Fatalf("first token: %#v", toks[0])
	}
	if toks[1].Type != TextToken || toks[1].Data != `if (a < b) { x("&amp;") }` {
		t.Errorf("raw text not preserved: %#v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Errorf("end tag: %#v", toks[2])
	}
	if toks[3].Data != "after" {
		t.Errorf("trailing text: %#v", toks[3])
	}
}

func TestTokenizeMalformed(t *testing.T) {
	cases := []string{
		"<",                      // lone open bracket
		"a < b",                  // comparison in text
		"<a href='unterminated",  // unterminated quote
		"<div",                   // unterminated tag
		"<!-- never closed",      // unterminated comment
		"</>",                    // empty end tag
		"<1abc>",                 // invalid tag name
		"<a b=>x</a>",            // empty attr value
		"<p a='1' a='1'",         // duplicate attrs, unterminated
		"<script>while(1){}",     // unterminated raw text
		"&#xZZ; &unknown; &amp",  // malformed entities
		"<td><td></tr></table>x", // stray end tags
	}
	for _, src := range cases {
		z := NewTokenizer([]byte(src))
		n := 0
		for {
			_, ok := z.Next()
			if !ok {
				break
			}
			if n++; n > 1000 {
				t.Fatalf("tokenizer did not terminate on %q", src)
			}
		}
	}
}

// Property: tokenization always terminates and never panics, on arbitrary
// byte soup — the recovery guarantee the paper's parser needs.
func TestTokenizeNeverPanics(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		z := NewTokenizer(b)
		for i := 0; ; i++ {
			if _, more := z.Next(); !more {
				break
			}
			if i > len(b)+10 {
				return false // must make progress
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing HTML-ish random soup (more '<' and '>' density)
// terminates too.
func TestTokenizeHTMLSoup(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	alphabet := []byte(`<>/="' abcdiv!-&;#`)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		z := NewTokenizer(b)
		for i := 0; ; i++ {
			if _, ok := z.Next(); !ok {
				break
			}
			if i > n+10 {
				t.Fatalf("no progress on soup %q", b)
			}
		}
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":     "a & b",
		"&lt;tag&gt;":   "<tag>",
		"&#65;&#x42;":   "AB",
		"&unknown;":     "&unknown;",
		"no entities":   "no entities",
		"&amp":          "&amp", // missing semicolon passes through
		"&;":            "&;",
		"&#xZZ;":        "&#xZZ;",
		"&#0;":          "&#0;", // NUL rejected
		"&nbsp;x":       " x",
		"&quot;q&quot;": `"q"`,
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		return DecodeEntities(EscapeText(s)) == s && DecodeEntities(EscapeAttr(s)) == s
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
