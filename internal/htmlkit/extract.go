package htmlkit

import (
	"net/url"
	"strconv"
	"strings"
)

// Link is a hyperlink found on a page: the F-logic link class of Figure 3
// (name ; string, address ; url).
type Link struct {
	Name    string // anchor text, whitespace-normalized
	Address string // absolute URL after resolution against the page URL
}

// WidgetType classifies a form input, mirroring the paper's attrValPair
// "type ; widget" attribute (checkbox, select, radio, text etc.).
type WidgetType string

// Widget types recognized by the extractor.
const (
	WidgetText     WidgetType = "text"
	WidgetHidden   WidgetType = "hidden"
	WidgetSelect   WidgetType = "select"
	WidgetRadio    WidgetType = "radio"
	WidgetCheckbox WidgetType = "checkbox"
	WidgetTextarea WidgetType = "textarea"
	WidgetSubmit   WidgetType = "submit"
)

// Field is one form attribute: the F-logic attrValPair class (attrName,
// type, default, value) enriched with the domain information the map
// builder infers (Section 7: option values, maximum length, defaults).
type Field struct {
	Name      string
	Widget    WidgetType
	Default   string
	Domain    []string // permitted values (select options, radio values)
	MaxLength int      // for text fields; 0 = unlimited
	Mandatory bool     // inferred: radio buttons are mandatory (Section 7)
}

// Form is an HTML form: the F-logic form class (cgi ; url, method ; meth,
// mandatory ⇒ attribute, optional ⇒ attribute).
type Form struct {
	Name   string // the form's name attribute, if any
	Action string // absolute CGI URL
	Method string // "get" or "post"
	Fields []Field
}

// Field returns the named field and whether it exists.
func (f *Form) Field(name string) (Field, bool) {
	for _, fl := range f.Fields {
		if fl.Name == name {
			return fl, true
		}
	}
	return Field{}, false
}

// MandatoryFields returns the names of fields inferred mandatory.
func (f *Form) MandatoryFields() []string {
	var out []string
	for _, fl := range f.Fields {
		if fl.Mandatory {
			out = append(out, fl.Name)
		}
	}
	return out
}

// OptionalFields returns the names of data fields not inferred mandatory
// (submit buttons are excluded: they carry no data).
func (f *Form) OptionalFields() []string {
	var out []string
	for _, fl := range f.Fields {
		if !fl.Mandatory && fl.Widget != WidgetSubmit {
			out = append(out, fl.Name)
		}
	}
	return out
}

// Resolve resolves ref against base, returning ref unchanged when base is
// unparsable. It tolerates the bare host-relative references common on old
// sites.
func Resolve(base, ref string) string {
	b, err := url.Parse(base)
	if err != nil {
		return ref
	}
	r, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return b.ResolveReference(r).String()
}

// Title returns the document title, or "" when absent.
func Title(doc *Node) string {
	if t := doc.Find("title"); t != nil {
		return t.Text()
	}
	return ""
}

// Links extracts all <a href> links, resolving addresses against baseURL.
func Links(doc *Node, baseURL string) []Link {
	var out []Link
	for _, a := range doc.FindAll("a") {
		href, ok := a.Attr("href")
		if !ok || href == "" {
			continue
		}
		out = append(out, Link{Name: a.Text(), Address: Resolve(baseURL, href)})
	}
	return out
}

// Forms extracts all forms with their typed fields, resolving action URLs
// against baseURL. Radio groups collapse into a single Field whose Domain
// lists the group's values.
func Forms(doc *Node, baseURL string) []Form {
	var out []Form
	for _, fn := range doc.FindAll("form") {
		f := Form{
			Name:   fn.AttrOr("name", ""),
			Action: Resolve(baseURL, fn.AttrOr("action", baseURL)),
			Method: strings.ToLower(fn.AttrOr("method", "get")),
		}
		radio := make(map[string]*Field)
		fn.Walk(func(n *Node) bool {
			if n.Type != ElementNode {
				return true
			}
			switch n.Data {
			case "input":
				extractInput(n, &f, radio)
			case "select":
				extractSelect(n, &f)
				return false // options handled inside
			case "textarea":
				f.Fields = append(f.Fields, Field{
					Name:    n.AttrOr("name", ""),
					Widget:  WidgetTextarea,
					Default: n.Text(),
				})
			}
			return true
		})
		out = append(out, f)
	}
	return out
}

func extractInput(n *Node, f *Form, radio map[string]*Field) {
	name := n.AttrOr("name", "")
	typ := strings.ToLower(n.AttrOr("type", "text"))
	val := n.AttrOr("value", "")
	switch typ {
	case "radio":
		// Radio buttons imply a mandatory attribute whose domain is the
		// union of the group's values (Section 7).
		fl, ok := radio[name]
		if !ok {
			f.Fields = append(f.Fields, Field{Name: name, Widget: WidgetRadio, Mandatory: true})
			fl = &f.Fields[len(f.Fields)-1]
			radio[name] = fl
		}
		fl.Domain = append(fl.Domain, val)
		if _, checked := n.Attr("checked"); checked {
			fl.Default = val
		}
	case "checkbox":
		f.Fields = append(f.Fields, Field{Name: name, Widget: WidgetCheckbox, Default: defaultChecked(n, val), Domain: []string{val}})
	case "hidden":
		f.Fields = append(f.Fields, Field{Name: name, Widget: WidgetHidden, Default: val})
	case "submit", "image", "button", "reset":
		if name != "" {
			f.Fields = append(f.Fields, Field{Name: name, Widget: WidgetSubmit, Default: val})
		}
	default: // text, search, and anything unknown degrade to text
		maxLen, _ := strconv.Atoi(n.AttrOr("maxlength", "0"))
		_, required := n.Attr("required")
		f.Fields = append(f.Fields, Field{
			Name: name, Widget: WidgetText, Default: val,
			MaxLength: maxLen, Mandatory: required,
		})
	}
}

func defaultChecked(n *Node, val string) string {
	if _, ok := n.Attr("checked"); ok {
		return val
	}
	return ""
}

func extractSelect(n *Node, f *Form) {
	fl := Field{Name: n.AttrOr("name", ""), Widget: WidgetSelect}
	for _, opt := range n.FindAll("option") {
		v := opt.AttrOr("value", opt.Text())
		fl.Domain = append(fl.Domain, v)
		if _, sel := opt.Attr("selected"); sel || fl.Default == "" {
			if sel {
				fl.Default = v
			}
		}
	}
	// A selection list with no empty option effectively forces a choice;
	// the paper's extractor infers the domain from the list either way.
	f.Fields = append(f.Fields, fl)
}

// Tables extracts each <table> as a matrix of cell texts, one row per <tr>,
// one entry per <td>/<th>.
func Tables(doc *Node) [][][]string {
	var out [][][]string
	for _, tbl := range doc.FindAll("table") {
		var rows [][]string
		for _, tr := range rowsOf(tbl) {
			var cells []string
			for _, c := range tr.Children {
				if c.IsElement("td") || c.IsElement("th") {
					cells = append(cells, c.Text())
				}
			}
			if len(cells) > 0 {
				rows = append(rows, cells)
			}
		}
		out = append(out, rows)
	}
	return out
}

// DataRow is one extracted table row: cell texts by lower-cased column
// name, plus any links found in the row's cells by link text.
type DataRow struct {
	Cells map[string]string
	Links map[string]string // link text → absolute URL
}

// DataTable finds the first table whose header contains all the given
// columns (case-insensitive) and returns its body rows with per-row links
// resolved against baseURL. It returns nil when no table matches.
func DataTable(doc *Node, baseURL string, columns ...string) []DataRow {
	for _, tbl := range doc.FindAll("table") {
		trs := rowsOf(tbl)
		if len(trs) == 0 {
			continue
		}
		idx := make(map[string]int)
		for i, c := range cellsOf(trs[0]) {
			idx[strings.ToLower(strings.TrimSpace(c.Text()))] = i
		}
		ok := true
		for _, c := range columns {
			if _, found := idx[strings.ToLower(c)]; !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Non-nil even when empty: a matching table with no body rows is
		// still a data page (a search that found nothing), distinct from
		// "no such table here".
		rows := []DataRow{}
		for _, tr := range trs[1:] {
			cells := cellsOf(tr)
			if len(cells) == 0 {
				continue
			}
			row := DataRow{Cells: make(map[string]string), Links: make(map[string]string)}
			for name, i := range idx {
				if i < len(cells) {
					row.Cells[name] = cells[i].Text()
				}
			}
			for _, cell := range cells {
				for _, a := range cell.FindAll("a") {
					if href, has := a.Attr("href"); has {
						row.Links[a.Text()] = Resolve(baseURL, href)
					}
				}
			}
			rows = append(rows, row)
		}
		return rows
	}
	return nil
}

func cellsOf(tr *Node) []*Node {
	var out []*Node
	for _, c := range tr.Children {
		if c.IsElement("td") || c.IsElement("th") {
			out = append(out, c)
		}
	}
	return out
}

// rowsOf returns the <tr> rows belonging to tbl itself, descending through
// grouping elements (thead/tbody/tfoot) but NOT into nested tables — the
// layout-table soup of the era would otherwise leak inner rows into the
// outer table's extraction.
func rowsOf(tbl *Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			if c.IsElement("table") {
				continue // nested table: its rows are its own
			}
			if c.IsElement("tr") {
				out = append(out, c)
				continue // cells may contain nested tables; don't descend
			}
			walk(c)
		}
	}
	walk(tbl)
	return out
}

// TableWithHeader finds the first table whose header row contains all the
// given column names (case-insensitive) and returns its body rows as
// column-name → cell-text maps. This is the workhorse for data-page
// extraction scripts.
func TableWithHeader(doc *Node, columns ...string) []map[string]string {
	for _, tbl := range Tables(doc) {
		if len(tbl) == 0 {
			continue
		}
		header := tbl[0]
		idx := make(map[string]int)
		for i, h := range header {
			idx[strings.ToLower(strings.TrimSpace(h))] = i
		}
		ok := true
		for _, c := range columns {
			if _, found := idx[strings.ToLower(c)]; !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rows := []map[string]string{}
		for _, r := range tbl[1:] {
			m := make(map[string]string, len(header))
			for h, i := range idx {
				if i < len(r) {
					m[h] = r[i]
				}
			}
			rows = append(rows, m)
		}
		return rows
	}
	return nil
}
