package sites

import (
	"fmt"
	"net/url"
	"strings"
	"testing"

	"webbase/internal/htmlkit"
	"webbase/internal/web"
)

func fetchDoc(t *testing.T, f web.Fetcher, req *web.Request) *htmlkit.Node {
	t.Helper()
	resp, err := f.Fetch(req)
	if err != nil {
		t.Fatalf("fetch %s: %v", req.URL, err)
	}
	if !resp.OK() {
		t.Fatalf("fetch %s: status %d", req.URL, resp.Status)
	}
	return htmlkit.Parse(resp.Body)
}

func findLink(t *testing.T, doc *htmlkit.Node, base, name string) string {
	t.Helper()
	for _, l := range htmlkit.Links(doc, base) {
		if strings.EqualFold(l.Name, name) {
			return l.Address
		}
	}
	t.Fatalf("no link %q on page (links: %v)", name, htmlkit.Links(doc, base))
	return ""
}

func TestDatasetDeterminism(t *testing.T) {
	a := NewDataset(42, 100)
	b := NewDataset(42, 100)
	if len(a.Ads) != 100 || len(b.Ads) != 100 {
		t.Fatal("wrong sizes")
	}
	for i := range a.Ads {
		if a.Ads[i] != b.Ads[i] {
			t.Fatalf("ad %d differs: %+v vs %+v", i, a.Ads[i], b.Ads[i])
		}
	}
	c := NewDataset(43, 100)
	same := 0
	for i := range a.Ads {
		if a.Ads[i] == c.Ads[i] {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds should differ")
	}
}

func TestDatasetQueries(t *testing.T) {
	ds := NewDataset(1, 400)
	fords := ds.ByMake("ford")
	if len(fords) == 0 {
		t.Fatal("no fords in 400 ads")
	}
	for _, a := range fords {
		if a.Make != "ford" {
			t.Fatalf("ByMake returned %+v", a)
		}
	}
	escorts := ds.ByMakeModel("ford", "escort")
	if len(escorts) == 0 {
		t.Fatal("no ford escorts")
	}
	if got := ds.Find(escorts[0].ID); got == nil || got.ID != escorts[0].ID {
		t.Error("Find by id failed")
	}
	if ds.Find(-1) != nil {
		t.Error("Find(-1) should be nil")
	}
	if models := ds.ModelsOf("ford"); len(models) == 0 {
		t.Error("no ford models")
	}
	if len(ds.ByMake("")) != 400 {
		t.Error("ByMake(\"\") should return all")
	}
}

func TestBlueBookShape(t *testing.T) {
	newer := BlueBook("jaguar", "xj6", 1997, "excellent")
	older := BlueBook("jaguar", "xj6", 1990, "excellent")
	if newer <= older {
		t.Errorf("newer car should cost more: %d vs %d", newer, older)
	}
	exc := BlueBook("ford", "escort", 1995, "excellent")
	fair := BlueBook("ford", "escort", 1995, "fair")
	if exc <= fair {
		t.Errorf("condition should matter: %d vs %d", exc, fair)
	}
	if BlueBook("nosuch", "car", 1995, "good") != 0 {
		t.Error("unknown make should price at 0")
	}
	if BlueBook("ford", "escort", 1995, "wrecked") != 0 {
		t.Error("unknown condition should price at 0")
	}
	// Future model years clamp to zero age rather than inflating.
	if BlueBook("ford", "escort", 2005, "excellent") != BlueBook("ford", "escort", ReferenceYear, "excellent") {
		t.Error("future years should clamp")
	}
}

func TestSafetyAndReliabilityStable(t *testing.T) {
	if SafetyRating("jaguar", "xj6") != "good" {
		t.Error("paper's running example needs jaguars to rate good")
	}
	for mk, models := range Catalog {
		for _, md := range models {
			s := SafetyRating(mk, md)
			if s != "good" && s != "average" && s != "poor" {
				t.Errorf("bad rating %q for %s %s", s, mk, md)
			}
			r := ReliabilityRating(mk, md)
			if r < 1 || r > 5 {
				t.Errorf("bad reliability %d for %s %s", r, mk, md)
			}
		}
	}
}

func TestFinanceRateShape(t *testing.T) {
	short := FinanceRate("10001", 24)
	long := FinanceRate("10001", 60)
	if long <= short {
		t.Errorf("longer loans should cost more: %f vs %f", long, short)
	}
	if FinanceRate("10001", 36) != FinanceRate("10001", 36) {
		t.Error("rate must be deterministic")
	}
}

// TestNewsdayFigure2Flow walks the exact navigation process of Figure 2:
// home → link(auto) → form f1(make) → (form f2 when too many) → data pages
// → More iteration → Car Features link.
func TestNewsdayFigure2Flow(t *testing.T) {
	w := BuildWorld()
	f := w.Server
	base := "http://" + NewsdayHost

	home := fetchDoc(t, f, web.NewGet(base+"/"))
	autoURL := findLink(t, home, base+"/", "Automobiles")

	usedCarPg := fetchDoc(t, f, web.NewGet(autoURL))
	forms := htmlkit.Forms(usedCarPg, autoURL)
	if len(forms) != 1 || forms[0].Name != "f1" {
		t.Fatalf("UsedCarPg forms: %+v", forms)
	}
	f1 := forms[0]
	mk, _ := f1.Field("make")
	if mk.Widget != htmlkit.WidgetSelect || len(mk.Domain) != len(Catalog) {
		t.Fatalf("make field: %+v", mk)
	}

	// Submit f1 with a popular make: expect the f2 branch.
	carPg := fetchDoc(t, f, web.NewSubmit(f1.Action, f1.Method, url.Values{"make": {"ford"}}))
	f2s := htmlkit.Forms(carPg, f1.Action)
	if len(f2s) != 1 || f2s[0].Name != "f2" {
		t.Fatalf("expected form f2 for a broad make, got %+v", f2s)
	}
	if hidden, _ := f2s[0].Field("make"); hidden.Default != "ford" {
		t.Fatalf("f2 should carry the make as hidden state: %+v", hidden)
	}

	// Submit f2 with a model: expect a data page.
	dataPg := fetchDoc(t, f, web.NewSubmit(f2s[0].Action, f2s[0].Method,
		url.Values{"make": {"ford"}, "model": {"escort"}}))
	rows := htmlkit.TableWithHeader(dataPg, "Make", "Model", "Year", "Price", "Contact")
	if len(rows) == 0 {
		t.Fatal("no data rows")
	}
	for _, r := range rows {
		if r["make"] != "ford" || r["model"] != "escort" {
			t.Fatalf("wrong row: %v", r)
		}
	}

	// Follow More links to exhaustion and count everything.
	total := len(rows)
	doc := dataPg
	curURL := f2s[0].Action
	pages := 1
	for {
		var moreURL string
		for _, l := range htmlkit.Links(doc, curURL) {
			if l.Name == "More" {
				moreURL = l.Address
			}
		}
		if moreURL == "" {
			break
		}
		doc = fetchDoc(t, f, web.NewGet(moreURL))
		curURL = moreURL
		rs := htmlkit.TableWithHeader(doc, "Make", "Model", "Year", "Price")
		total += len(rs)
		if pages++; pages > 100 {
			t.Fatal("More loop did not terminate")
		}
	}
	want := len(w.Datasets[NewsdayHost].ByMakeModel("ford", "escort"))
	if total != want {
		t.Errorf("paginated total = %d, dataset has %d", total, want)
	}

	// Per-ad Car Features link leads to the features data page.
	var featURL string
	for _, l := range htmlkit.Links(dataPg, f2s[0].Action) {
		if l.Name == "Car Features" {
			featURL = l.Address
			break
		}
	}
	if featURL == "" {
		t.Fatal("no Car Features link")
	}
	featPg := fetchDoc(t, f, web.NewGet(featURL))
	fr := htmlkit.TableWithHeader(featPg, "Features", "Picture")
	if len(fr) != 1 || fr[0]["picture"] == "" {
		t.Errorf("features rows: %v", fr)
	}
}

func TestNewsdayRareMakeSkipsF2(t *testing.T) {
	// saab has only 2 models and few ads; expect data page directly.
	w := BuildWorld()
	ds := w.Datasets[NewsdayHost]
	var rare string
	for _, mk := range Makes() {
		if n := len(ds.ByMake(mk)); n > 0 && n <= TooManyMatches {
			rare = mk
			break
		}
	}
	if rare == "" {
		t.Skip("no rare make in dataset; adjust sizes")
	}
	doc := fetchDoc(t, w.Server, web.NewSubmit(
		"http://"+NewsdayHost+"/cgi-bin/nclassy", "POST", url.Values{"make": {rare}}))
	if rows := htmlkit.TableWithHeader(doc, "Make", "Price"); len(rows) == 0 {
		t.Errorf("rare make %q should go straight to data", rare)
	}
}

func TestNewsdayFeatrsFilterAndErrors(t *testing.T) {
	w := BuildWorld()
	base := "http://" + NewsdayHost
	doc := fetchDoc(t, w.Server, web.NewSubmit(base+"/cgi-bin/nclassy", "POST",
		url.Values{"make": {"ford"}, "model": {"escort"}, "featrs": {"sunroof"}}))
	rows := htmlkit.TableWithHeader(doc, "Make", "Model")
	oracle := filterFeatures(w.Datasets[NewsdayHost].ByMakeModel("ford", "escort"), "sunroof")
	if len(rows) == 0 && len(oracle) > 0 {
		t.Error("feature filter dropped everything")
	}
	// Missing make is an error page, not a crash.
	resp, err := w.Server.Fetch(web.NewSubmit(base+"/cgi-bin/nclassy", "POST", url.Values{}))
	if err != nil || !strings.Contains(string(resp.Body), "required") {
		t.Errorf("missing make: %v %v", resp, err)
	}
	// Bad feature page id → 404.
	resp, _ = w.Server.Fetch(web.NewGet(base + "/features?id=999999"))
	if resp.Status != 404 {
		t.Errorf("bad id status = %d", resp.Status)
	}
}

// TestEverySiteServesItsFlow drives each remaining site end to end.
func TestEverySiteServesItsFlow(t *testing.T) {
	w := BuildWorld()
	f := w.Server

	t.Run("nytimes", func(t *testing.T) {
		base := "http://" + NYTimesHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		cl := findLink(t, home, base+"/", "Classifieds")
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(cl)), cl)[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"ford"}, "model": {"escort"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "Features", "Price", "Contact")
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
	})

	t.Run("newyorkdaily", func(t *testing.T) {
		base := "http://" + NewYorkDailyHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		autos := findLink(t, home, base+"/", "Auto Classifieds")
		search := findLink(t, fetchDoc(t, f, web.NewGet(autos)), autos, "Search Used Cars")
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(search)), search)[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method, url.Values{"make": {"honda"}}))
		// Sloppy markup must still parse into rows.
		if rows := htmlkit.TableWithHeader(doc, "Make", "Price"); len(rows) == 0 {
			t.Fatal("sloppy table yielded no rows")
		}
	})

	t.Run("carpoint", func(t *testing.T) {
		base := "http://" + CarPointHost
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(base+"/")), base+"/")[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"toyota"}, "model": {"camry"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "ZipCode", "Contact")
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		// Zipcode filter narrows.
		zip := rows[0]["zipcode"]
		doc2 := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"toyota"}, "model": {"camry"}, "zipcode": {zip}}))
		rows2 := htmlkit.TableWithHeader(doc2, "Make", "ZipCode")
		for _, r := range rows2 {
			if r["zipcode"] != zip {
				t.Fatalf("zip filter leaked: %v", r)
			}
		}
	})

	t.Run("autoweb", func(t *testing.T) {
		base := "http://" + AutoWebHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		used := findLink(t, home, base+"/", "Used Car Search")
		f1 := htmlkit.Forms(fetchDoc(t, f, web.NewGet(used)), used)[0]
		modelsPg := fetchDoc(t, f, web.NewSubmit(f1.Action, f1.Method, url.Values{"make": {"bmw"}}))
		f2 := htmlkit.Forms(modelsPg, f1.Action)[0]
		md, _ := f2.Field("model")
		if len(md.Domain) == 0 {
			t.Fatal("dynamic model form has empty domain")
		}
		doc := fetchDoc(t, f, web.NewSubmit(f2.Action, f2.Method,
			url.Values{"make": {"bmw"}, "model": {md.Domain[0]}}))
		if rows := htmlkit.TableWithHeader(doc, "Make", "Model", "Price"); len(rows) == 0 {
			t.Fatal("no rows")
		}
	})

	t.Run("wwwheels", func(t *testing.T) {
		base := "http://" + WWWheelsHost
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(base+"/")), base+"/")[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method, url.Values{"make": {"dodge"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "Price")
		want := len(w.Datasets[WWWheelsHost].ByMake("dodge"))
		if len(rows) != want {
			t.Fatalf("rows = %d, dataset = %d (WWWheels is unpaginated)", len(rows), want)
		}
	})

	t.Run("autoconnect", func(t *testing.T) {
		base := "http://" + AutoConnectHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		find := findLink(t, home, base+"/", "Find a Car")
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(find)), find)[0]
		cond, _ := form.Field("condition")
		if !cond.Mandatory || cond.Widget != htmlkit.WidgetRadio {
			t.Fatalf("condition should be a mandatory radio group: %+v", cond)
		}
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"ford"}, "condition": {"good"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "Condition")
		for _, r := range rows {
			if r["condition"] != "good" {
				t.Fatalf("condition filter leaked: %v", r)
			}
		}
	})

	t.Run("yahoocars", func(t *testing.T) {
		base := "http://" + YahooCarsHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		mkURL := findLink(t, home, base+"/", "chevrolet")
		mkPg := fetchDoc(t, f, web.NewGet(mkURL))
		links := htmlkit.Links(mkPg, mkURL)
		if len(links) == 0 {
			t.Fatal("no model links")
		}
		doc := fetchDoc(t, f, web.NewGet(links[0].Address))
		if rows := htmlkit.TableWithHeader(doc, "Make", "Model", "Price"); len(rows) == 0 {
			t.Fatal("no listing rows")
		}
	})

	t.Run("kellys", func(t *testing.T) {
		base := "http://" + KellysHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		pr := findLink(t, home, base+"/", "Price a Used Car")
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(pr)), pr)[0]
		// With year: one row matching the BlueBook oracle.
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"jaguar"}, "model": {"xj6"}, "year": {"1994"}, "condition": {"good"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "BBPrice")
		if len(rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(rows))
		}
		want := fmt.Sprintf("$%d", BlueBook("jaguar", "xj6", 1994, "good"))
		if rows[0]["bbprice"] != want {
			t.Errorf("bbprice = %q, want %q", rows[0]["bbprice"], want)
		}
		// Without year: a row per year.
		doc = fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"make": {"jaguar"}, "model": {"xj6"}, "condition": {"good"}}))
		if rows := htmlkit.TableWithHeader(doc, "Year", "BBPrice"); len(rows) != 11 {
			t.Errorf("yearless rows = %d, want 11", len(rows))
		}
	})

	t.Run("caranddriver", func(t *testing.T) {
		base := "http://" + CarAndDriverHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		sf := findLink(t, home, base+"/", "Safety Ratings")
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(sf)), sf)[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method, url.Values{"make": {"jaguar"}}))
		rows := htmlkit.TableWithHeader(doc, "Make", "Model", "Safety")
		if len(rows) != len(Catalog["jaguar"]) {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if r["safety"] != "good" {
				t.Errorf("jaguar safety = %q", r["safety"])
			}
		}
	})

	t.Run("carreviews", func(t *testing.T) {
		base := "http://" + CarReviewsHost
		home := fetchDoc(t, f, web.NewGet(base+"/"))
		mkURL := findLink(t, home, base+"/", "honda")
		mdURL := findLink(t, fetchDoc(t, f, web.NewGet(mkURL)), mkURL, "civic")
		doc := fetchDoc(t, f, web.NewGet(mdURL))
		rows := htmlkit.TableWithHeader(doc, "Make", "Model", "Reliability")
		if len(rows) != 1 || rows[0]["reliability"] != "5" {
			t.Errorf("honda civic reliability rows: %v", rows)
		}
	})

	t.Run("carfinance", func(t *testing.T) {
		base := "http://" + CarFinanceHost
		form := htmlkit.Forms(fetchDoc(t, f, web.NewGet(base+"/")), base+"/")[0]
		doc := fetchDoc(t, f, web.NewSubmit(form.Action, form.Method,
			url.Values{"zipcode": {"11201"}, "duration": {"36"}}))
		rows := htmlkit.TableWithHeader(doc, "ZipCode", "Duration", "Rate")
		if len(rows) != 1 {
			t.Fatalf("rows = %d", len(rows))
		}
		want := fmt.Sprintf("%.2f", FinanceRate("11201", 36))
		if rows[0]["rate"] != want {
			t.Errorf("rate = %q, want %q", rows[0]["rate"], want)
		}
	})
}

func TestAllHostsRegistered(t *testing.T) {
	w := BuildWorld()
	hosts := w.Server.Hosts()
	if len(hosts) != len(All) {
		t.Fatalf("registered %d hosts, want %d", len(hosts), len(All))
	}
	for _, s := range All {
		resp, err := w.Server.Fetch(web.NewGet("http://" + s.Host + "/"))
		if err != nil || !resp.OK() {
			t.Errorf("site %s home page: %v %v", s.Name, resp, err)
		}
	}
}
