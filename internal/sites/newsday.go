package sites

import (
	"fmt"
	"sort"
	"strconv"

	"webbase/internal/web"
)

// NewsdayHost is the virtual host of the Newsday classifieds site.
const NewsdayHost = "newsday.example"

// AdPageSize is the number of ads each data page carries before a "More"
// link is emitted. Small so that the "repeatedly hitting the More button"
// iteration of Figure 2 is exercised.
const AdPageSize = 5

// TooManyMatches is the result count above which Newsday interposes the
// second form (f2, asking for model and features) instead of showing data
// — the if-then-else branch of Figure 2.
const TooManyMatches = 2 * AdPageSize

// Newsday builds the Newsday classifieds site: the site whose navigation
// map is Figure 2 of the paper. Its shape:
//
//	/                 home; links l1, auto, l3, l4
//	/auto             UsedCarPg; form f1(make) → POST /cgi-bin/nclassy
//	/cgi-bin/nclassy  carPg: either a data page (table + More link + per-ad
//	                  "Car Features" links) or, when too many ads match,
//	                  a page with form f2(model, featrs)
//	/features         newsdayCarFeatures data page for one ad
func Newsday(ds *Dataset) web.Site {
	m := web.NewMux(NewsdayHost)
	base := "http://" + NewsdayHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Newsday Online", false).
			heading("Newsday").
			link("Long Island News", base+"/news").
			link("Automobiles", base+"/auto").
			link("Collectible Cars", base+"/collectibles").
			link("Sport Utility", base+"/suv")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/news", staticPage("Long Island News", "Nothing to see here.")) // filler section
	m.Handle("/collectibles", carListPage("Collectible Cars", ds, func(a Ad) bool { return a.Year < 1990 }))
	m.Handle("/suv", carListPage("Sport Utility", ds, func(a Ad) bool { return a.Model == "explorer" || a.Model == "suburban" }))

	m.Handle("/auto", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Newsday Used Car Classifieds", false).
			heading("Used Car Classifieds").
			text("Select a make to search Long Island and New York City ads.").
			form("f1", base+"/cgi-bin/nclassy", "post",
				selectField("make", Makes()...))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/nclassy", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		model := req.Param("model")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", false).text("make is required").done()), nil
		}
		ads := ds.ByMakeModel(mk, model)
		// Figure 2's branch: too many matches without a model → ask the
		// user to narrow via form f2 (model and desired features). The
		// hidden refined flag marks the second round: resubmitting f2
		// without picking a model means "all models" and yields data —
		// "the length of the sequence is not fixed; it is usually one or
		// two" (Section 4).
		if model == "" && req.Param("refined") == "" && len(ads) > TooManyMatches {
			p := newPage("Newsday: Narrow Your Search", false).
				heading(fmt.Sprintf("%d ads match %q — narrow your search", len(ads), mk)).
				form("f2", base+"/cgi-bin/nclassy", "post",
					hiddenField("make", mk),
					hiddenField("refined", "1"),
					selectField("model", ds.ModelsOf(mk)...),
					textField("featrs"))
			return web.HTML(req.URL, p.done()), nil
		}
		if featrs := req.Param("featrs"); featrs != "" {
			ads = filterFeatures(ads, featrs)
		}
		page := atoiOr(req.Param("page"), 0)
		return web.HTML(req.URL, newsdayDataPage(base, mk, model, req.Param("featrs"), ads, page)), nil
	}))

	m.Handle("/features", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		id := atoiOr(req.Param("id"), -1)
		ad := ds.Find(id)
		if ad == nil {
			return web.NotFound(req.URL), nil
		}
		p := newPage("Car Features", false).
			heading(fmt.Sprintf("%s %s (%d)", titleCase(ad.Make), titleCase(ad.Model), ad.Year)).
			table([]string{"Features", "Picture"}, [][]string{{ad.Features, ad.Picture}})
		return web.HTML(req.URL, p.done()), nil
	}))

	return m
}

// newsdayDataPage renders one page of ads with per-ad "Car Features" links
// and a "More" link while further pages remain (the link(more) self-loop of
// Figure 2).
func newsdayDataPage(base, mk, model, featrs string, ads []Ad, page int) string {
	start := page * AdPageSize
	end := start + AdPageSize
	if start > len(ads) {
		start = len(ads)
	}
	if end > len(ads) {
		end = len(ads)
	}
	cols := []string{"Make", "Model", "Year", "Price", "Contact"}
	rows := make([][]string, 0, end-start)
	hrefs := make([]string, 0, end-start)
	for _, a := range ads[start:end] {
		rows = append(rows, adRow(a, cols))
		hrefs = append(hrefs, fmt.Sprintf("%s/features?id=%d", base, a.ID))
	}
	p := newPage("Newsday Used Car Listings", false).
		heading(fmt.Sprintf("Listings %d–%d of %d", start+1, end, len(ads))).
		tableLinked(cols, rows, "Car Features", hrefs)
	if end < len(ads) {
		p.link("More", fmt.Sprintf("%s/cgi-bin/nclassy?make=%s&model=%s&featrs=%s&refined=1&page=%d",
			base, mk, model, featrs, page+1))
	}
	return p.done()
}

// filterFeatures keeps ads whose feature list mentions the requested text.
func filterFeatures(ads []Ad, featrs string) []Ad {
	var out []Ad
	for _, a := range ads {
		if containsFold(a.Features, featrs) {
			out = append(out, a)
		}
	}
	return out
}

func containsFold(haystack, needle string) bool {
	h, n := []byte(haystack), []byte(needle)
	lower := func(b byte) byte {
		if b >= 'A' && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
	if len(n) == 0 {
		return true
	}
outer:
	for i := 0; i+len(n) <= len(h); i++ {
		for j := range n {
			if lower(h[i+j]) != lower(n[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}

func atoiOr(s string, def int) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// staticPage returns a handler serving a fixed page.
func staticPage(title, body string) web.FetcherFunc {
	return func(req *web.Request) (*web.Response, error) {
		return web.HTML(req.URL, newPage(title, false).heading(title).text(body).done()), nil
	}
}

// carListPage renders a simple unsearchable listing of the ads passing
// keep, used for the filler sections of the classified sites.
func carListPage(title string, ds *Dataset, keep func(Ad) bool) web.FetcherFunc {
	return func(req *web.Request) (*web.Response, error) {
		cols := []string{"Make", "Model", "Year", "Price"}
		var rows [][]string
		for _, a := range ds.Ads {
			if keep(a) {
				rows = append(rows, adRow(a, cols))
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
		p := newPage(title, false).heading(title).table(cols, rows)
		return web.HTML(req.URL, p.done()), nil
	}
}
