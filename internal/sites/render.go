package sites

import (
	"fmt"
	"strings"

	"webbase/internal/htmlkit"
)

// pageBuilder assembles era-style HTML. Some sites deliberately emit the
// sloppy markup of the period (unclosed <td>/<tr>, uppercase tags, missing
// quotes) so that the lenient parser's recovery is exercised on every run.
type pageBuilder struct {
	sb     strings.Builder
	sloppy bool
}

func newPage(title string, sloppy bool) *pageBuilder {
	p := &pageBuilder{sloppy: sloppy}
	p.sb.WriteString("<html><head><title>")
	p.sb.WriteString(htmlkit.EscapeText(title))
	p.sb.WriteString("</title></head><body>\n")
	return p
}

func (p *pageBuilder) text(s string) *pageBuilder {
	p.sb.WriteString("<p>")
	p.sb.WriteString(htmlkit.EscapeText(s))
	if !p.sloppy {
		p.sb.WriteString("</p>")
	}
	p.sb.WriteString("\n")
	return p
}

func (p *pageBuilder) heading(s string) *pageBuilder {
	p.sb.WriteString("<h1>")
	p.sb.WriteString(htmlkit.EscapeText(s))
	p.sb.WriteString("</h1>\n")
	return p
}

func (p *pageBuilder) link(name, href string) *pageBuilder {
	fmt.Fprintf(&p.sb, `<a href="%s">%s</a><br>`, htmlkit.EscapeAttr(href), htmlkit.EscapeText(name))
	p.sb.WriteString("\n")
	return p
}

// formField describes one field emitted by form().
type formField struct {
	name    string
	widget  htmlkit.WidgetType
	options []string // select/radio domains
	def     string
	hidden  string // value for hidden fields
}

func textField(name string) formField {
	return formField{name: name, widget: htmlkit.WidgetText}
}

func selectField(name string, options ...string) formField {
	return formField{name: name, widget: htmlkit.WidgetSelect, options: options}
}

func radioField(name string, options ...string) formField {
	return formField{name: name, widget: htmlkit.WidgetRadio, options: options}
}

func hiddenField(name, value string) formField {
	return formField{name: name, widget: htmlkit.WidgetHidden, hidden: value}
}

func (p *pageBuilder) form(name, action, method string, fields ...formField) *pageBuilder {
	fmt.Fprintf(&p.sb, `<form name="%s" action="%s" method="%s">`,
		htmlkit.EscapeAttr(name), htmlkit.EscapeAttr(action), method)
	p.sb.WriteString("\n")
	for _, f := range fields {
		switch f.widget {
		case htmlkit.WidgetSelect:
			fmt.Fprintf(&p.sb, `%s: <select name="%s">`, htmlkit.EscapeText(f.name), htmlkit.EscapeAttr(f.name))
			for _, o := range f.options {
				sel := ""
				if o == f.def {
					sel = " selected"
				}
				fmt.Fprintf(&p.sb, `<option value="%s"%s>%s</option>`, htmlkit.EscapeAttr(o), sel, htmlkit.EscapeText(titleCase(o)))
			}
			p.sb.WriteString("</select><br>\n")
		case htmlkit.WidgetRadio:
			fmt.Fprintf(&p.sb, "%s: ", htmlkit.EscapeText(f.name))
			for _, o := range f.options {
				chk := ""
				if o == f.def {
					chk = " checked"
				}
				fmt.Fprintf(&p.sb, `<input type="radio" name="%s" value="%s"%s>%s `,
					htmlkit.EscapeAttr(f.name), htmlkit.EscapeAttr(o), chk, htmlkit.EscapeText(o))
			}
			p.sb.WriteString("<br>\n")
		case htmlkit.WidgetHidden:
			fmt.Fprintf(&p.sb, `<input type="hidden" name="%s" value="%s">`,
				htmlkit.EscapeAttr(f.name), htmlkit.EscapeAttr(f.hidden))
			p.sb.WriteString("\n")
		default:
			fmt.Fprintf(&p.sb, `%s: <input type="text" name="%s" value="%s"><br>`,
				htmlkit.EscapeText(f.name), htmlkit.EscapeAttr(f.name), htmlkit.EscapeAttr(f.def))
			p.sb.WriteString("\n")
		}
	}
	p.sb.WriteString(`<input type="submit" value="Search"></form>` + "\n")
	return p
}

// table renders rows under a header. In sloppy mode the cells are left
// unclosed, as on many real sites of the era; the lenient parser repairs
// them.
func (p *pageBuilder) table(header []string, rows [][]string) *pageBuilder {
	p.sb.WriteString("<table border=1>\n<tr>")
	for _, h := range header {
		fmt.Fprintf(&p.sb, "<th>%s</th>", htmlkit.EscapeText(h))
	}
	p.sb.WriteString("</tr>\n")
	for _, row := range rows {
		p.sb.WriteString("<tr>")
		for _, c := range row {
			if p.sloppy {
				fmt.Fprintf(&p.sb, "<td>%s", htmlkit.EscapeText(c))
			} else {
				fmt.Fprintf(&p.sb, "<td>%s</td>", htmlkit.EscapeText(c))
			}
		}
		if !p.sloppy {
			p.sb.WriteString("</tr>")
		}
		p.sb.WriteString("\n")
	}
	p.sb.WriteString("</table>\n")
	return p
}

// tableLinked renders rows like table but appends a final cell per row
// containing a named link (e.g. the per-ad "Car Features" link at Newsday).
func (p *pageBuilder) tableLinked(header []string, rows [][]string, linkName string, hrefs []string) *pageBuilder {
	p.sb.WriteString("<table border=1>\n<tr>")
	for _, h := range header {
		fmt.Fprintf(&p.sb, "<th>%s</th>", htmlkit.EscapeText(h))
	}
	fmt.Fprintf(&p.sb, "<th>%s</th>", htmlkit.EscapeText(linkName))
	p.sb.WriteString("</tr>\n")
	for i, row := range rows {
		p.sb.WriteString("<tr>")
		for _, c := range row {
			fmt.Fprintf(&p.sb, "<td>%s</td>", htmlkit.EscapeText(c))
		}
		fmt.Fprintf(&p.sb, `<td><a href="%s">%s</a></td></tr>`, htmlkit.EscapeAttr(hrefs[i]), htmlkit.EscapeText(linkName))
		p.sb.WriteString("\n")
	}
	p.sb.WriteString("</table>\n")
	return p
}

// layoutOpen starts a 1990s layout table (sidebar cell + content cell);
// layoutClose ends it. Content written between the two lands inside the
// layout cell, so parsers must not confuse layout rows with data rows.
func (p *pageBuilder) layoutOpen() *pageBuilder {
	p.sb.WriteString(`<table width="100%"><tr><td width="20%">` +
		`<a href="/specials">Specials</a><br><a href="/financing">Financing</a>` +
		`</td><td>` + "\n")
	return p
}

func (p *pageBuilder) layoutClose() *pageBuilder {
	p.sb.WriteString("</td></tr></table>\n")
	return p
}

// titleCase upper-cases the first letter of each word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w != "" {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
	}
	return strings.Join(words, " ")
}

// footerLinks is the boilerplate navigation every page of the era carried.
// It matters for the map-builder statistics: the paper's "85 objects with
// over 600 attributes" for Newsday's map came overwhelmingly from such
// automatically extracted page furniture.
var footerLinks = []struct{ name, path string }{
	{"About Us", "/about"}, {"Help", "/help"}, {"Advertise", "/advertise"},
	{"Feedback", "/feedback"}, {"Copyright Notice", "/copyright"}, {"Site Index", "/siteindex"},
}

func (p *pageBuilder) done() string {
	p.sb.WriteString("<hr>\n")
	for _, f := range footerLinks {
		fmt.Fprintf(&p.sb, `<a href="%s">%s</a> `, f.path, f.name)
	}
	p.sb.WriteString("\n</body></html>\n")
	return p.sb.String()
}

// adRow renders an ad in the canonical column order used by the classified
// and dealer data pages.
func adRow(a Ad, cols []string) []string {
	row := make([]string, len(cols))
	for i, c := range cols {
		switch c {
		case "Make":
			row[i] = a.Make
		case "Model":
			row[i] = a.Model
		case "Year":
			row[i] = fmt.Sprintf("%d", a.Year)
		case "Price":
			row[i] = fmt.Sprintf("$%d", a.Price)
		case "Contact":
			row[i] = a.Contact
		case "ZipCode":
			row[i] = a.Zip
		case "Features":
			row[i] = a.Features
		case "Condition":
			row[i] = a.Condition
		}
	}
	return row
}
