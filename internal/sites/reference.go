package sites

import (
	"fmt"

	"webbase/internal/web"
)

// Hosts of the reference sites (blue book, safety, reliability, finance).
const (
	KellysHost       = "kbb.example"
	CarAndDriverHost = "caranddriver.example"
	CarReviewsHost   = "carreviews.example"
	CarFinanceHost   = "carfinance.example"
)

// Kellys builds Kelly's Blue Book: form(make, model, condition — the
// mandatory set of Table 3; year optional). With a year the answer is a
// single price row; without one it is a row per model year, matching how
// the real site listed prices by year.
func Kellys() web.Site {
	m := web.NewMux(KellysHost)
	base := "http://" + KellysHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Kelly's Blue Book", false).
			heading("Kelly's Blue Book — Used Car Values").
			link("Price a Used Car", base+"/usedcar")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/usedcar", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Price a Used Car", false).
			form("pricer", base+"/cgi-bin/price", "post",
				selectField("make", Makes()...),
				textField("model"),
				textField("year"),
				radioField("condition", "excellent", "good", "fair"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/price", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk, model, cond := req.Param("make"), req.Param("model"), req.Param("condition")
		if mk == "" || model == "" || cond == "" {
			return web.HTML(req.URL, newPage("Error", false).
				text("make, model and condition are required").done()), nil
		}
		cols := []string{"Make", "Model", "Year", "Condition", "BBPrice"}
		var rows [][]string
		addRow := func(year int) {
			bb := BlueBook(mk, model, year, cond)
			if bb > 0 {
				rows = append(rows, []string{mk, model, fmt.Sprintf("%d", year), cond, fmt.Sprintf("$%d", bb)})
			}
		}
		if y := atoiOr(req.Param("year"), 0); y > 0 {
			addRow(y)
		} else {
			for y := 1988; y <= 1998; y++ {
				addRow(y)
			}
		}
		p := newPage("Blue Book Value", false).
			heading(fmt.Sprintf("Blue Book: %s %s (%s)", titleCase(mk), titleCase(model), cond)).
			table(cols, rows)
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// CarAndDriver builds the Car and Driver safety-ratings site: form(make) →
// table of (Make, Model, Safety) — the VPS relation carAndDriver(Car,
// Safety) of Table 1.
func CarAndDriver() web.Site {
	m := web.NewMux(CarAndDriverHost)
	base := "http://" + CarAndDriverHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Car and Driver", false).
			heading("Car and Driver").
			link("Safety Ratings", base+"/safety")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/safety", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Safety Ratings", false).
			form("safety", base+"/cgi-bin/safety", "get",
				selectField("make", Makes()...))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/safety", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		models, ok := Catalog[mk]
		if !ok {
			return web.HTML(req.URL, newPage("Error", false).text("unknown make").done()), nil
		}
		cols := []string{"Make", "Model", "Safety"}
		rows := make([][]string, 0, len(models))
		for _, md := range models {
			rows = append(rows, []string{mk, md, SafetyRating(mk, md)})
		}
		p := newPage("Safety Ratings: "+titleCase(mk), false).table(cols, rows)
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// CarReviews builds the CarReviews site: reliability scores per model,
// reached through a per-make link directory and a per-model review page —
// the deepest navigation among the reference sites, which is why it shows
// one of the larger page counts in the Section 7 timing table.
func CarReviews() web.Site {
	m := web.NewMux(CarReviewsHost)
	base := "http://" + CarReviewsHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("CarReviews", false).heading("Reviews by Make")
		for _, mk := range Makes() {
			p.link(mk, fmt.Sprintf("%s/reviews?make=%s", base, mk))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/reviews", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		models, ok := Catalog[mk]
		if !ok {
			return web.NotFound(req.URL), nil
		}
		p := newPage("Reviews: "+titleCase(mk), false).heading("Model Reviews")
		for _, md := range models {
			p.link(md, fmt.Sprintf("%s/review?make=%s&model=%s", base, mk, md))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/review", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk, md := req.Param("make"), req.Param("model")
		p := newPage(fmt.Sprintf("Review: %s %s", titleCase(mk), titleCase(md)), false).
			heading(fmt.Sprintf("%s %s", titleCase(mk), titleCase(md))).
			table([]string{"Make", "Model", "Reliability"},
				[][]string{{mk, md, fmt.Sprintf("%d", ReliabilityRating(mk, md))}})
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// CarFinance builds the CarFinance rate site: form(zipcode mandatory,
// duration) → rate table — the VPS relation carFinance(Car, ZipCode,
// Duration, Rate).
func CarFinance() web.Site {
	m := web.NewMux(CarFinanceHost)
	base := "http://" + CarFinanceHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("CarFinance", false).
			heading("CarFinance.example — used car loans").
			form("rates", base+"/cgi-bin/rates", "get",
				textField("zipcode"),
				selectField("duration", "24", "36", "48", "60"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/rates", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		zip := req.Param("zipcode")
		if zip == "" {
			return web.HTML(req.URL, newPage("Error", false).text("zipcode is required").done()), nil
		}
		cols := []string{"ZipCode", "Duration", "Rate"}
		var rows [][]string
		addRow := func(months int) {
			rows = append(rows, []string{zip, fmt.Sprintf("%d", months),
				fmt.Sprintf("%.2f", FinanceRate(zip, months))})
		}
		if d := atoiOr(req.Param("duration"), 0); d > 0 {
			addRow(d)
		} else {
			for _, d := range []int{24, 36, 48, 60} {
				addRow(d)
			}
		}
		p := newPage("Loan Rates", false).table(cols, rows)
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}
