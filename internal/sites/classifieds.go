package sites

import (
	"fmt"

	"webbase/internal/web"
)

// Hosts of the newspaper classified sites.
const (
	NYTimesHost      = "nytimes.example"
	NewYorkDailyHost = "nydailynews.example"
)

// NYTimes builds the New York Times classifieds site. Its shape is one
// level flatter than Newsday's: home → link("Classifieds") → form(make
// mandatory, model optional) → paginated data pages that carry the
// Features column inline (the VPS relation nyTimes(Make, Model, Features,
// Price, Contact) of Table 1).
func NYTimes(ds *Dataset) web.Site {
	m := web.NewMux(NYTimesHost)
	base := "http://" + NYTimesHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("The New York Times", false).
			heading("The New York Times").
			link("Today's News", base+"/news").
			link("Classifieds", base+"/classified")
		return web.HTML(req.URL, p.done()), nil
	}))
	m.Handle("/news", staticPage("Today's News", "All the news that's fit to print."))

	m.Handle("/classified", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("NYT Auto Classifieds", false).
			heading("Automobile Classifieds").
			form("search", base+"/cgi-bin/autosearch", "get",
				selectField("make", Makes()...),
				textField("model"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/autosearch", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", false).text("make is required").done()), nil
		}
		ads := ds.ByMakeModel(mk, req.Param("model"))
		page := atoiOr(req.Param("page"), 0)
		start, end := pageBounds(len(ads), page)
		cols := []string{"Make", "Model", "Year", "Features", "Price", "Contact"}
		rows := make([][]string, 0, end-start)
		for _, a := range ads[start:end] {
			rows = append(rows, adRow(a, cols))
		}
		p := newPage("NYT Auto Search Results", false).
			heading(fmt.Sprintf("Results %d–%d of %d", start+1, end, len(ads))).
			table(cols, rows)
		if end < len(ads) {
			p.link("More", fmt.Sprintf("%s/cgi-bin/autosearch?make=%s&model=%s&page=%d",
				base, mk, req.Param("model"), page+1))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	return m
}

// NewYorkDaily builds the New York Daily News classifieds site: two link
// hops to the search form, and deliberately sloppy markup (unclosed table
// cells) so the lenient parser's recovery is exercised on a full site.
func NewYorkDaily(ds *Dataset) web.Site {
	m := web.NewMux(NewYorkDailyHost)
	base := "http://" + NewYorkDailyHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("NY Daily News", true).
			heading("New York Daily News").
			link("Sports Final", base+"/sports").
			link("Auto Classifieds", base+"/autos")
		return web.HTML(req.URL, p.done()), nil
	}))
	m.Handle("/sports", staticPage("Sports Final", "Yanks win."))

	m.Handle("/autos", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Auto Classifieds", true).
			heading("Auto Classifieds").
			text("Thousands of cars in the five boroughs.").
			link("Search Used Cars", base+"/autos/search")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/autos/search", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Used Car Search", true).
			form("carsearch", base+"/cgi-bin/cars.cgi", "post",
				selectField("make", Makes()...))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/cars.cgi", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", true).text("make is required").done()), nil
		}
		ads := ds.ByMake(mk)
		page := atoiOr(req.Param("page"), 0)
		start, end := pageBounds(len(ads), page)
		cols := []string{"Make", "Model", "Year", "Price", "Contact"}
		rows := make([][]string, 0, end-start)
		for _, a := range ads[start:end] {
			rows = append(rows, adRow(a, cols))
		}
		p := newPage("Used Cars", true).
			heading(fmt.Sprintf("Used cars: %s", titleCase(mk))).
			table(cols, rows)
		if end < len(ads) {
			p.link("More", fmt.Sprintf("%s/cgi-bin/cars.cgi?make=%s&page=%d", base, mk, page+1))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	return m
}

// pageBounds clamps the [start, end) slice bounds for page n of a result
// list paginated at AdPageSize.
func pageBounds(total, page int) (start, end int) {
	start = page * AdPageSize
	if start > total {
		start = total
	}
	end = start + AdPageSize
	if end > total {
		end = total
	}
	return start, end
}
