package sites

import (
	"fmt"

	"webbase/internal/web"
)

// Hosts of the dealer sites.
const (
	CarPointHost    = "carpoint.example"
	AutoWebHost     = "autoweb.example"
	WWWheelsHost    = "wwwheels.example"
	AutoConnectHost = "autoconnect.example"
	YahooCarsHost   = "yahoocars.example"
)

// dealerCols is the column set of the dealer data pages: the VPS relations
// carPoint/autoWeb(Car, Price, Features, ZipCode, Contact) of Table 1.
var dealerCols = []string{"Make", "Model", "Year", "Price", "Features", "ZipCode", "Contact"}

// CarPoint builds the CarPoint dealer site: a single search form taking
// make (mandatory), model and zipcode (optional) straight on the home
// page, answering with one paginated listing.
func CarPoint(ds *Dataset) web.Site {
	m := web.NewMux(CarPointHost)
	base := "http://" + CarPointHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("CarPoint", false).
			heading("CarPoint Dealer Network").
			form("finder", base+"/cgi-bin/find", "get",
				selectField("make", Makes()...),
				textField("model"),
				textField("zipcode"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/find", dealerSearch(ds, base+"/cgi-bin/find", false))
	return m
}

// AutoWeb builds the AutoWeb dealer site: a two-form drill-down — first
// pick the make, then on a second dynamically generated page pick the
// model (the second form is itself produced by a CGI script, one of the
// difficulties the paper's introduction highlights).
func AutoWeb(ds *Dataset) web.Site {
	m := web.NewMux(AutoWebHost)
	base := "http://" + AutoWebHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("AutoWeb", false).
			heading("AutoWeb").
			link("Used Car Search", base+"/used")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/used", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("AutoWeb Used Cars", false).
			form("pickmake", base+"/cgi-bin/models", "post",
				selectField("make", Makes()...))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/models", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", false).text("make is required").done()), nil
		}
		// Dynamically generated second form whose model domain depends on
		// the previous input.
		p := newPage("AutoWeb: Pick a Model", false).
			heading(fmt.Sprintf("Models of %s in stock", titleCase(mk))).
			form("pickmodel", base+"/cgi-bin/stock", "post",
				hiddenField("make", mk),
				selectField("model", ds.ModelsOf(mk)...))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/stock", dealerSearch(ds, base+"/cgi-bin/stock", false))
	return m
}

// WWWheels builds the WWWheels site: the simplest dealer — one form on the
// home page and a single unpaginated (and sloppily marked-up) data page.
func WWWheels(ds *Dataset) web.Site {
	m := web.NewMux(WWWheelsHost)
	base := "http://" + WWWheelsHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("WWWheels", true).
			heading("WWWheels — wheels on the World Wide Web").
			form("q", base+"/cgi-bin/q", "get",
				selectField("make", Makes()...),
				textField("model"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/q", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", true).text("make is required").done()), nil
		}
		ads := ds.ByMakeModel(mk, req.Param("model"))
		rows := make([][]string, 0, len(ads))
		for _, a := range ads {
			rows = append(rows, adRow(a, dealerCols))
		}
		// WWWheels wraps its results in a layout table (sidebar + content),
		// the typical 1990s construction that forces extractors to keep
		// nested tables apart.
		p := newPage("WWWheels Results", true).
			heading(fmt.Sprintf("%d cars found", len(ads))).
			layoutOpen().
			table(dealerCols, rows).
			layoutClose()
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// AutoConnect builds the AutoConnect site: its search form uses a radio
// group for condition — the widget from which the map builder infers a
// mandatory attribute (Section 7).
func AutoConnect(ds *Dataset) web.Site {
	m := web.NewMux(AutoConnectHost)
	base := "http://" + AutoConnectHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("AutoConnect", false).
			heading("AutoConnect").
			link("Find a Car", base+"/find")
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/find", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("AutoConnect Finder", false).
			form("finder", base+"/cgi-bin/inv", "post",
				selectField("make", Makes()...),
				textField("model"),
				radioField("condition", "excellent", "good", "fair"))
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/cgi-bin/inv", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		cond := req.Param("condition")
		if mk == "" || cond == "" {
			return web.HTML(req.URL, newPage("Error", false).text("make and condition are required").done()), nil
		}
		var ads []Ad
		for _, a := range ds.ByMakeModel(mk, req.Param("model")) {
			if a.Condition == cond {
				ads = append(ads, a)
			}
		}
		page := atoiOr(req.Param("page"), 0)
		start, end := pageBounds(len(ads), page)
		cols := []string{"Make", "Model", "Year", "Condition", "Price", "ZipCode", "Contact"}
		rows := make([][]string, 0, end-start)
		for _, a := range ads[start:end] {
			rows = append(rows, adRow(a, cols))
		}
		p := newPage("AutoConnect Inventory", false).
			heading(fmt.Sprintf("Inventory %d–%d of %d", start+1, end, len(ads))).
			table(cols, rows)
		if end < len(ads) {
			p.link("More", fmt.Sprintf("%s/cgi-bin/inv?make=%s&model=%s&condition=%s&page=%d",
				base, mk, req.Param("model"), cond, page+1))
		}
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// YahooCars builds the Yahoo! Cars directory site: no forms at all — makes
// and models are "attributes implicitly defined through a set of links"
// (Section 7), so navigation picks links by name rather than filling
// fields.
func YahooCars(ds *Dataset) web.Site {
	m := web.NewMux(YahooCarsHost)
	base := "http://" + YahooCarsHost

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage("Yahoo! Cars", false).heading("Browse by Make")
		for _, mk := range Makes() {
			p.link(mk, fmt.Sprintf("%s/make?make=%s", base, mk))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/make", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		models := ds.ModelsOf(mk)
		if len(models) == 0 {
			return web.NotFound(req.URL), nil
		}
		p := newPage("Yahoo! Cars: "+titleCase(mk), false).heading("Browse by Model")
		for _, md := range models {
			p.link(md, fmt.Sprintf("%s/listing?make=%s&model=%s", base, mk, md))
		}
		return web.HTML(req.URL, p.done()), nil
	}))

	m.Handle("/listing", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		ads := ds.ByMakeModel(req.Param("make"), req.Param("model"))
		page := atoiOr(req.Param("page"), 0)
		start, end := pageBounds(len(ads), page)
		rows := make([][]string, 0, end-start)
		for _, a := range ads[start:end] {
			rows = append(rows, adRow(a, dealerCols))
		}
		p := newPage("Yahoo! Cars Listing", false).
			heading(fmt.Sprintf("Listings %d–%d of %d", start+1, end, len(ads))).
			table(dealerCols, rows)
		if end < len(ads) {
			p.link("More", fmt.Sprintf("%s/listing?make=%s&model=%s&page=%d",
				base, req.Param("make"), req.Param("model"), page+1))
		}
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}

// dealerSearch returns the shared CGI handler of the simple dealer sites:
// filter by make/model (and zipcode when given) and paginate.
func dealerSearch(ds *Dataset, action string, sloppy bool) web.FetcherFunc {
	return func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", sloppy).text("make is required").done()), nil
		}
		ads := ds.ByMakeModel(mk, req.Param("model"))
		if zip := req.Param("zipcode"); zip != "" {
			var kept []Ad
			for _, a := range ads {
				if a.Zip == zip {
					kept = append(kept, a)
				}
			}
			ads = kept
		}
		page := atoiOr(req.Param("page"), 0)
		start, end := pageBounds(len(ads), page)
		rows := make([][]string, 0, end-start)
		for _, a := range ads[start:end] {
			rows = append(rows, adRow(a, dealerCols))
		}
		p := newPage("Dealer Search Results", sloppy).
			heading(fmt.Sprintf("Results %d–%d of %d", start+1, end, len(ads))).
			table(dealerCols, rows)
		if end < len(ads) {
			p.link("More", fmt.Sprintf("%s?make=%s&model=%s&zipcode=%s&page=%d",
				action, mk, req.Param("model"), req.Param("zipcode"), page+1))
		}
		return web.HTML(req.URL, p.done()), nil
	}
}
