// Package sites implements the simulated car-shopping Web the paper's
// evaluation ran against: the ten sites of the Section 7 timing table
// (AutoWeb, WWWheels, NYTimes, CarReviews, NewYorkDaily, CarAndDriver,
// AutoConnect, Newsday, YahooCars, Kelly's) plus CarPoint and CarFinance
// from Table 1.
//
// Every site is deterministic: its pages are generated from seeded
// synthetic datasets, so experiments are reproducible. The navigational
// shape of each site (which links/forms lead where, conditional second
// forms, "More" pagination) mirrors the shapes described in the paper —
// that shape, not the 1998 content, is what the evaluation measures.
package sites

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Ad is one used-car advertisement in a site's backing dataset.
type Ad struct {
	ID        int
	Make      string
	Model     string
	Year      int
	Price     int
	Contact   string
	Zip       string
	Features  string
	Picture   string
	Condition string // excellent | good | fair
}

// Catalog lists the makes and models that exist in the simulated world.
var Catalog = map[string][]string{
	"ford":      {"escort", "taurus", "mustang", "explorer"},
	"jaguar":    {"xj6", "xjs", "vandenplas"},
	"honda":     {"civic", "accord", "prelude"},
	"toyota":    {"camry", "corolla", "celica"},
	"bmw":       {"325i", "528i", "m3"},
	"chevrolet": {"cavalier", "camaro", "suburban"},
	"dodge":     {"neon", "caravan", "viper"},
	"saab":      {"900", "9000"},
}

// basePrice is each make's new-car reference price used by the blue book.
var basePrice = map[string]int{
	"ford": 16000, "jaguar": 55000, "honda": 18000, "toyota": 19000,
	"bmw": 42000, "chevrolet": 15000, "dodge": 14000, "saab": 28000,
}

// modelPremium adjusts the base price per model position in the catalog:
// later models in a make's list are pricier trims.
func modelPremium(mk, model string) int {
	for i, m := range Catalog[mk] {
		if m == model {
			return i * 2500
		}
	}
	return 0
}

// conditionFactor scales the blue book by reported condition.
var conditionFactor = map[string]float64{
	"excellent": 1.0, "good": 0.88, "fair": 0.72,
}

// ReferenceYear is "now" in the simulated world: the paper's present, 1999.
const ReferenceYear = 1999

// Makes returns all makes, sorted.
func Makes() []string {
	out := make([]string, 0, len(Catalog))
	for m := range Catalog {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// BlueBook returns Kelly's blue book price for a car: base price adjusted
// for model trim, depreciated 11% per year of age, scaled by condition.
// Unknown make/model/condition combinations price at zero (Kelly's knows
// nothing about them).
func BlueBook(mk, model string, year int, condition string) int {
	base, ok := basePrice[mk]
	if !ok {
		return 0
	}
	cf, ok := conditionFactor[condition]
	if !ok {
		return 0
	}
	price := float64(base + modelPremium(mk, model))
	age := ReferenceYear - year
	if age < 0 {
		age = 0
	}
	for i := 0; i < age; i++ {
		price *= 0.89
	}
	return int(price * cf)
}

// SafetyRating returns Car&Driver's safety rating for a model: one of
// "good", "average", "poor". The assignment is deterministic (hash of the
// name) but fixed so that, as in the paper's running example, jaguars rate
// "good".
func SafetyRating(mk, model string) string {
	if mk == "jaguar" || mk == "bmw" || mk == "saab" {
		return "good"
	}
	var h uint32
	for _, c := range mk + "/" + model {
		h = h*31 + uint32(c)
	}
	switch h % 3 {
	case 0:
		return "good"
	case 1:
		return "average"
	default:
		return "poor"
	}
}

// ReliabilityRating returns CarReviews' reliability score from 1 (worst)
// to 5 (best), deterministic per model.
func ReliabilityRating(mk, model string) int {
	if mk == "honda" || mk == "toyota" {
		return 5
	}
	var h uint32
	for _, c := range model + ":" + mk {
		h = h*17 + uint32(c)
	}
	return 1 + int(h%4)
}

// FinanceRate returns CarFinance's annual percentage rate for a loan in
// the given zip code and duration in months. Longer loans and outer
// boroughs cost more; the formula is arbitrary but deterministic.
func FinanceRate(zip string, months int) float64 {
	var h uint32
	for _, c := range zip {
		h = h*13 + uint32(c)
	}
	return 6.0 + float64(months)/24.0 + float64(h%150)/100.0
}

// nycZips are the zip codes the classified sites draw contacts from.
var nycZips = []string{
	"10001", "10036", "10128", "11201", "11375", "10451", "10301",
	"11550", "11706", "10601",
}

var featurePool = []string{
	"air conditioning", "sunroof", "leather", "alloy wheels",
	"cd player", "abs", "power windows", "cruise control",
}

var conditions = []string{"excellent", "good", "fair"}

// Dataset is a deterministic collection of ads backing one site.
type Dataset struct {
	Ads []Ad
}

// makeWeight biases ad generation: saab is a rare make (so that broad
// searches for it fit on one result page, exercising the direct
// form-to-data branch of Figure 2), everything else is common.
func makeWeight(mk string) int {
	if mk == "saab" {
		return 1
	}
	return 12
}

// NewDataset generates n ads from the given seed. The same (seed, n) always
// yields the same ads. Prices track the blue book with a ±25% scatter so
// that "price below blue book" queries are selective but non-empty.
func NewDataset(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	makes := Makes()
	total := 0
	for _, mk := range makes {
		total += makeWeight(mk)
	}
	ds := &Dataset{Ads: make([]Ad, 0, n)}
	for i := 0; i < n; i++ {
		pick := r.Intn(total)
		mk := makes[len(makes)-1]
		for _, cand := range makes {
			if pick -= makeWeight(cand); pick < 0 {
				mk = cand
				break
			}
		}
		models := Catalog[mk]
		model := models[r.Intn(len(models))]
		year := 1988 + r.Intn(11) // 1988..1998
		cond := conditions[r.Intn(len(conditions))]
		bb := BlueBook(mk, model, year, cond)
		price := int(float64(bb) * (0.75 + r.Float64()*0.5))
		nf := 1 + r.Intn(4)
		feats := make([]string, 0, nf)
		perm := r.Perm(len(featurePool))
		for _, j := range perm[:nf] {
			feats = append(feats, featurePool[j])
		}
		sort.Strings(feats)
		ds.Ads = append(ds.Ads, Ad{
			ID:        i + 1,
			Make:      mk,
			Model:     model,
			Year:      year,
			Price:     price,
			Contact:   fmt.Sprintf("(516) 555-%04d", 100+r.Intn(9000)),
			Zip:       nycZips[r.Intn(len(nycZips))],
			Features:  strings.Join(feats, "; "),
			Picture:   fmt.Sprintf("/img/car%d.gif", i+1),
			Condition: cond,
		})
	}
	return ds
}

// ByMake returns the ads of the given make (all ads when mk is empty).
func (d *Dataset) ByMake(mk string) []Ad {
	var out []Ad
	for _, a := range d.Ads {
		if mk == "" || a.Make == mk {
			out = append(out, a)
		}
	}
	return out
}

// ByMakeModel returns the ads matching make and (when non-empty) model.
func (d *Dataset) ByMakeModel(mk, model string) []Ad {
	var out []Ad
	for _, a := range d.Ads {
		if a.Make == mk && (model == "" || a.Model == model) {
			out = append(out, a)
		}
	}
	return out
}

// Find returns the ad with the given id, or nil.
func (d *Dataset) Find(id int) *Ad {
	for i := range d.Ads {
		if d.Ads[i].ID == id {
			return &d.Ads[i]
		}
	}
	return nil
}

// ModelsOf returns the distinct models of a make present in the dataset.
func (d *Dataset) ModelsOf(mk string) []string {
	seen := make(map[string]bool)
	for _, a := range d.Ads {
		if a.Make == mk {
			seen[a.Model] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
