package sites

import (
	"fmt"

	"webbase/internal/web"
)

// ScaledWorld is a parameterized simulated Web of n single-form dealer
// sites (the WWWheels shape), used to study how evaluation scales with
// site count beyond the paper's ten sites.
type ScaledWorld struct {
	Server *web.Server
	Hosts  []string
}

// ScaledHost returns the host name of the i-th generated dealer.
func ScaledHost(i int) string { return fmt.Sprintf("dealer%03d.example", i) }

// BuildScaledWorld generates n dealer sites with independent seeded
// datasets. Deterministic for a given n.
func BuildScaledWorld(n int) *ScaledWorld {
	w := &ScaledWorld{Server: web.NewServer()}
	for i := 0; i < n; i++ {
		host := ScaledHost(i)
		ds := NewDataset(int64(1000+i), 120)
		w.Server.Register(scaledDealer(host, ds))
		w.Hosts = append(w.Hosts, host)
	}
	return w
}

// scaledDealer is the WWWheels shape on an arbitrary host: one form on the
// home page, one unpaginated result table.
func scaledDealer(host string, ds *Dataset) web.Site {
	m := web.NewMux(host)
	base := "http://" + host

	m.Handle("/", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		p := newPage(host, false).
			heading(host).
			form("q", base+"/cgi-bin/q", "get",
				selectField("make", Makes()...),
				textField("model"))
		return web.HTML(req.URL, p.done()), nil
	}))
	m.Handle("/cgi-bin/q", web.FetcherFunc(func(req *web.Request) (*web.Response, error) {
		mk := req.Param("make")
		if mk == "" {
			return web.HTML(req.URL, newPage("Error", false).text("make is required").done()), nil
		}
		ads := ds.ByMakeModel(mk, req.Param("model"))
		rows := make([][]string, 0, len(ads))
		for _, a := range ads {
			rows = append(rows, adRow(a, dealerCols))
		}
		p := newPage(host+" results", false).
			heading(fmt.Sprintf("%d cars", len(ads))).
			table(dealerCols, rows)
		return web.HTML(req.URL, p.done()), nil
	}))
	return m
}
