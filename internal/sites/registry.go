package sites

import "webbase/internal/web"

// SiteInfo describes one simulated site for the experiment harness.
type SiteInfo struct {
	Name string // display name, as in the Section 7 timing table
	Host string
}

// All lists the simulated sites in the order of the Section 7 timing
// table, followed by the Table 1 sites that the timing table omits.
var All = []SiteInfo{
	{"AutoWeb", AutoWebHost},
	{"WWWheels", WWWheelsHost},
	{"NYTimes", NYTimesHost},
	{"CarReviews", CarReviewsHost},
	{"NewYorkDaily", NewYorkDailyHost},
	{"CarAndDriver", CarAndDriverHost},
	{"AutoConnect", AutoConnectHost},
	{"Newsday", NewsdayHost},
	{"YahooCars", YahooCarsHost},
	{"Kellys", KellysHost},
	{"CarPoint", CarPointHost},
	{"CarFinance", CarFinanceHost},
}

// World is the assembled simulated Web together with the ground-truth
// datasets backing each classifieds/dealer site, which tests and the
// experiment harness use as oracles.
type World struct {
	Server   *web.Server
	Datasets map[string]*Dataset // host → backing dataset (ad-carrying sites only)
}

// Seeds and sizes of the per-site datasets. Sizes differ so that the
// page-count column of the timing table varies by site the way the
// paper's does.
var datasetSpec = []struct {
	host string
	seed int64
	n    int
}{
	{NewsdayHost, 1, 400},
	{NYTimesHost, 2, 350},
	{NewYorkDailyHost, 3, 300},
	{CarPointHost, 4, 250},
	{AutoWebHost, 5, 300},
	{WWWheelsHost, 6, 150},
	{AutoConnectHost, 7, 280},
	{YahooCarsHost, 8, 320},
}

// BuildWorld assembles the whole simulated Web with its standard datasets.
// The result is deterministic across runs.
func BuildWorld() *World {
	w := &World{Server: web.NewServer(), Datasets: make(map[string]*Dataset)}
	for _, spec := range datasetSpec {
		w.Datasets[spec.host] = NewDataset(spec.seed, spec.n)
	}
	w.Server.Register(Newsday(w.Datasets[NewsdayHost]))
	w.Server.Register(NYTimes(w.Datasets[NYTimesHost]))
	w.Server.Register(NewYorkDaily(w.Datasets[NewYorkDailyHost]))
	w.Server.Register(CarPoint(w.Datasets[CarPointHost]))
	w.Server.Register(AutoWeb(w.Datasets[AutoWebHost]))
	w.Server.Register(WWWheels(w.Datasets[WWWheelsHost]))
	w.Server.Register(AutoConnect(w.Datasets[AutoConnectHost]))
	w.Server.Register(YahooCars(w.Datasets[YahooCarsHost]))
	w.Server.Register(Kellys())
	w.Server.Register(CarAndDriver())
	w.Server.Register(CarReviews())
	w.Server.Register(CarFinance())
	return w
}
