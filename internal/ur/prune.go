package ur

import (
	"webbase/internal/algebra"
	"webbase/internal/prune"
)

// pruneOps maps the algebra's comparison operators onto the prune
// package's (prune sits below algebra and cannot import it).
var pruneOps = map[algebra.CmpOp]prune.Op{
	algebra.EQ: prune.EQ, algebra.NE: prune.NE,
	algebra.LT: prune.LT, algebra.LE: prune.LE,
	algebra.GT: prune.GT, algebra.GE: prune.GE,
}

// NewPruneState compiles the query's conjunctive WHERE clause into a
// runtime access-relevance state (package prune). Attach it with
// prune.ContextWith before EvalStream and every layer below consults it:
// handle invocations whose inputs violate the clause are skipped
// pre-fetch, dependent-join feeds whose upstream bindings are doomed are
// never invoked, and — when sound — maximal objects stop launching once
// LIMIT is satisfied.
//
// The cardinality early-exit is armed only when truncation is oblivious
// to evaluation order: LIMIT n with no ORDER BY, or with every sort key
// discharged by an equality constant (then all answer tuples compare
// equal on every key, and the stable sort preserves plan-order union
// order, so the first n distinct union tuples are the answer).
func NewPruneState(q Query) *prune.State {
	conds := make([]prune.Cond, 0, len(q.Conditions))
	for _, c := range q.Conditions {
		op, ok := pruneOps[c.Op]
		if !ok {
			continue // unknown operator: never prune on it
		}
		conds = append(conds, prune.Cond{Attr: c.Attr, Op: op, Val: c.Val, Attr2: c.Attr2})
	}
	limit := 0
	if q.Limit > 0 && orderDischarged(q) {
		limit = q.Limit
	}
	return prune.NewState(conds, limit)
}

// orderDischarged reports whether every ORDER BY key is pinned to a
// single value by an equality-constant condition.
func orderDischarged(q Query) bool {
	for _, k := range q.OrderBy {
		pinned := false
		for _, c := range q.Conditions {
			if c.Attr == k.Attr && c.Op == algebra.EQ && c.Attr2 == "" {
				pinned = true
				break
			}
		}
		if !pinned {
			return false
		}
	}
	return true
}
