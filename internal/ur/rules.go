package ur

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is one compatibility rule. Positive (⊕): once Context is joined,
// joining Target also "makes sense". Negative (⊖): joining Target with
// Context is a navigation trap. An empty Context on a positive rule makes
// Target a valid starting relation.
type Rule struct {
	Target   string
	Context  []string
	Negative bool
}

// Plus builds a positive rule Target ⊕ Context.
func Plus(target string, context ...string) Rule {
	return Rule{Target: target, Context: context}
}

// Minus builds a negative rule Target ⊖ Context.
func Minus(target string, context ...string) Rule {
	return Rule{Target: target, Context: context, Negative: true}
}

// String renders the rule.
func (r Rule) String() string {
	op := "⊕"
	if r.Negative {
		op = "⊖"
	}
	if len(r.Context) == 0 {
		return fmt.Sprintf("%s %s ∅", r.Target, op)
	}
	return fmt.Sprintf("%s %s %s", r.Target, op, strings.Join(r.Context, ", "))
}

// Compatible implements the paper's compatibility test for a set of UR
// relations: for every member R there must be a positive rule R ⊕ L with
// L ⊆ set∖{R}, and there must be no negative rule R ⊖ L with
// {R} ∪ L ⊆ set.
func Compatible(set []string, rules []Rule) bool {
	in := make(map[string]bool, len(set))
	for _, r := range set {
		in[r] = true
	}
	covered := func(context []string, except string) bool {
		for _, c := range context {
			if c == except || !in[c] {
				return false
			}
		}
		return true
	}
	// Negative rules veto.
	for _, rule := range rules {
		if rule.Negative && in[rule.Target] && covered(rule.Context, "") {
			return false
		}
	}
	// Every member needs positive justification.
	for _, member := range set {
		justified := false
		for _, rule := range rules {
			if rule.Negative || rule.Target != member {
				continue
			}
			if covered(rule.Context, member) {
				justified = true
				break
			}
		}
		if !justified {
			return false
		}
	}
	return true
}

// MaxRelationsForEnumeration bounds the exact maximal-object search. UR
// schemas are designed per application domain by a domain expert (Section
// 6) and have a handful of relations, so exact enumeration is affordable.
const MaxRelationsForEnumeration = 22

// MaximalObjects enumerates the maximal (w.r.t. inclusion) compatible
// subsets of relations — the paper's analogue of Maier–Ullman maximal
// objects. Results and their members are sorted for determinism.
//
// Compatibility is not monotone in either direction (a member's positive
// justification may only appear once its context joins; a negative rule
// may only trigger once its context completes), so the exact powerset is
// examined. The relation count is bounded by MaxRelationsForEnumeration;
// beyond that the function panics, signalling a misdesigned UR schema.
func MaximalObjects(relations []string, rules []Rule) [][]string {
	rels := append([]string(nil), relations...)
	sort.Strings(rels)
	n := len(rels)
	if n > MaxRelationsForEnumeration {
		panic(fmt.Sprintf("ur: %d relations exceed the maximal-object enumeration bound %d", n, MaxRelationsForEnumeration))
	}
	var compatibleSets [][]string
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, rels[i])
			}
		}
		if Compatible(s, rules) {
			compatibleSets = append(compatibleSets, s)
		}
	}
	// Keep the maximal ones.
	var out [][]string
	for _, s := range compatibleSets {
		maximal := true
		for _, other := range compatibleSets {
			if len(other) > len(s) && subset(s, other) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

func subset(small, big []string) bool {
	in := make(map[string]bool, len(big))
	for _, v := range big {
		in[v] = true
	}
	for _, v := range small {
		if !in[v] {
			return false
		}
	}
	return true
}
