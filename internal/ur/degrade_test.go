package ur

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"webbase/internal/algebra"
	"webbase/internal/relation"
	"webbase/internal/web"
)

// downCatalog fails Populate for the named relations with an
// Outage-classified, host-attributed error — a logical layer whose
// backing sites are dead.
type downCatalog struct {
	*algebra.MemCatalog
	down map[string]string // relation → dead host
}

func (c *downCatalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	if host, ok := c.down[name]; ok {
		return nil, web.MarkOutage(&web.HostError{Host: host,
			Err: fmt.Errorf("web: 3 attempts failed: connection refused")})
	}
	return c.MemCatalog.Populate(name, inputs)
}

// TestEvalDeadSiteInOnlyObject: when every plan object needs the dead
// site, the query fails — classified, not silently empty — and a dead
// site the plan never touches changes nothing.
func TestEvalDeadSiteInOnlyObject(t *testing.T) {
	s, mem := memLogical()
	// The mini schema has one maximal object {Ads, Book, Safety}; this
	// query's minimal cover is {Ads, Book}, so the dead book site kills
	// the only plan object.
	q := Query{
		Output: []string{"Make", "Price", "BBPrice"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: relation.String("jaguar")},
		},
	}
	healthy, err := s.Eval(q, mem)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degradation != nil {
		t.Fatalf("healthy eval degraded: %+v", healthy.Degradation)
	}

	cat := &downCatalog{MemCatalog: mem, down: map[string]string{"book": "book.example"}}
	_, err = s.Eval(q, cat)
	if err == nil {
		t.Fatal("query over a dead mandatory site succeeded")
	}
	if !web.IsOutage(err) {
		t.Fatalf("total failure lost its classification: %v", err)
	}

	// A cover that never touches book: the dead site is irrelevant.
	q2 := Query{
		Output: []string{"Make", "Safety"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: relation.String("jaguar")},
		},
	}
	res2, err := s.Eval(q2, cat)
	if err != nil || res2.Degradation != nil {
		t.Fatalf("unrelated site affected the query: %v %+v", err, res2)
	}
}

// miniTwoObjectWorld builds a schema with two maximal objects that both
// cover the same query, so one can die and the other can answer.
func miniTwoObjectWorld() (*Schema, *algebra.MemCatalog) {
	h := &Hierarchy{Root: Cat("UR",
		Rel("A", Attr("K"), Attr("V")),
		Rel("B", Attr("K"), Attr("V")),
	)}
	// A ⊕ ∅ and B ⊕ ∅ but A ⊖ B: the set {A, B} is vetoed, leaving two
	// singleton maximal objects that both cover {K, V}.
	rules := []Rule{Plus("A"), Plus("B"), Minus("A", "B")}
	s, err := NewSchema("two", h, rules, map[string]string{"A": "a", "B": "b"})
	if err != nil {
		panic(err)
	}
	cat := algebra.NewMemCatalog()
	a := relation.New("a", relation.NewSchema("K", "V"))
	a.MustInsert(relation.String("k1"), relation.Int(1))
	a.MustInsert(relation.String("k2"), relation.Int(2))
	cat.Add(a, relation.NewAttrSet())
	b := relation.New("b", relation.NewSchema("K", "V"))
	b.MustInsert(relation.String("k3"), relation.Int(3))
	cat.Add(b, relation.NewAttrSet())
	return s, cat
}

// TestEvalPartialAnswerExactlySurvivors: the degraded answer must be
// exactly the surviving object's tuples, with the dead object reported.
func TestEvalPartialAnswerExactlySurvivors(t *testing.T) {
	s, mem := miniTwoObjectWorld()
	q := Query{Output: []string{"K", "V"}}

	healthy, err := s.Eval(q, mem)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Relation.Len() != 3 {
		t.Fatalf("healthy answer = %d tuples", healthy.Relation.Len())
	}

	cat := &downCatalog{MemCatalog: mem, down: map[string]string{"b": "b.example"}}
	res, err := s.Eval(q, cat)
	if err != nil {
		t.Fatalf("degraded eval failed outright: %v", err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("degraded answer = %d tuples, want exactly a's 2", res.Relation.Len())
	}
	if !res.Degradation.Degraded() || len(res.Degradation.Unavailable) != 1 {
		t.Fatalf("degradation report: %+v", res.Degradation)
	}
	f := res.Degradation.Unavailable[0]
	if f.Host != "b.example" {
		t.Errorf("failure host = %q", f.Host)
	}
	if strings.Join(f.Object, ",") != "B" {
		t.Errorf("failure object = %v", f.Object)
	}
	if !strings.Contains(f.Err, "connection refused") {
		t.Errorf("failure err = %q", f.Err)
	}
	rep := res.Degradation.String()
	if !strings.Contains(rep, "1 object(s) unavailable") || !strings.Contains(rep, "host=b.example") {
		t.Errorf("report rendering:\n%s", rep)
	}

	// Both objects down: the query fails, keeping classification and the
	// per-site detail in the message.
	all := &downCatalog{MemCatalog: mem,
		down: map[string]string{"a": "a.example", "b": "b.example"}}
	_, err = s.Eval(q, all)
	if err == nil {
		t.Fatal("all-objects-down eval succeeded")
	}
	if !web.IsOutage(err) {
		t.Errorf("total outage not classified: %v", err)
	}
	if !strings.Contains(err.Error(), "a.example") && !strings.Contains(err.Error(), "b.example") {
		t.Errorf("total outage names no host: %v", err)
	}
}

// driftCatalog fails Populate for the named relations with a
// drift-classified error — sites that answer but no longer match their
// navigation maps.
type driftCatalog struct {
	*algebra.MemCatalog
	drifted map[string]string // relation → drifted host
}

func (c *driftCatalog) Populate(name string, inputs map[string]relation.Value) (*relation.Relation, error) {
	if host, ok := c.drifted[name]; ok {
		return nil, web.MarkDrift(&web.HostError{Host: host,
			Err: fmt.Errorf("navcalc: navigation failed: link \"Automobiles\" not found")})
	}
	return c.MemCatalog.Populate(name, inputs)
}

// TestEvalDriftDegradesWithKind: a drifted site degrades the answer like
// an outage does, but the report says so — Kind is "drift" and the
// rendered line carries the tag, so operators (and the health tracker)
// can tell a redesign from a dead host. Outage entries keep the
// historical untagged format byte for byte.
func TestEvalDriftDegradesWithKind(t *testing.T) {
	s, mem := miniTwoObjectWorld()
	q := Query{Output: []string{"K", "V"}}

	cat := &driftCatalog{MemCatalog: mem, drifted: map[string]string{"b": "b.example"}}
	res, err := s.Eval(q, cat)
	if err != nil {
		t.Fatalf("degraded eval failed outright: %v", err)
	}
	if res.Relation.Len() != 2 {
		t.Fatalf("degraded answer = %d tuples, want the surviving object's 2", res.Relation.Len())
	}
	if len(res.Degradation.Unavailable) != 1 {
		t.Fatalf("degradation report: %+v", res.Degradation)
	}
	f := res.Degradation.Unavailable[0]
	if f.Kind != FailureDrift {
		t.Errorf("failure kind = %q, want %q", f.Kind, FailureDrift)
	}
	if f.Host != "b.example" {
		t.Errorf("failure host = %q", f.Host)
	}
	rep := res.Degradation.String()
	if !strings.Contains(rep, "host=b.example [drift]:") {
		t.Errorf("drift entry not tagged in report:\n%s", rep)
	}

	// An outage entry renders exactly as it always has — no tag.
	down := &downCatalog{MemCatalog: mem, down: map[string]string{"b": "b.example"}}
	res, err = s.Eval(q, down)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Degradation.Unavailable[0].Kind; got != FailureOutage {
		t.Errorf("outage kind = %q, want %q", got, FailureOutage)
	}
	rep = res.Degradation.String()
	if strings.Contains(rep, "[") {
		t.Errorf("outage entry grew a tag:\n%s", rep)
	}
	if !strings.Contains(rep, "host=b.example:") {
		t.Errorf("outage entry lost its historical format:\n%s", rep)
	}
}

// TestEvalStrictFailsFastOnDrift: strict mode refuses drift-degraded
// answers the same way it refuses outage-degraded ones, and the error
// keeps the drift classification for the caller's health tracking.
func TestEvalStrictFailsFastOnDrift(t *testing.T) {
	s, mem := miniTwoObjectWorld()
	cat := &driftCatalog{MemCatalog: mem, drifted: map[string]string{"b": "b.example"}}
	_, err := s.EvalContext(WithStrict(context.Background()), Query{Output: []string{"K", "V"}}, cat)
	if err == nil {
		t.Fatal("strict eval succeeded over a drifted site")
	}
	if !web.IsDrift(err) {
		t.Errorf("strict drift failure not classified: %v", err)
	}
	if web.FailingHost(err) != "b.example" {
		t.Errorf("strict failure host = %q", web.FailingHost(err))
	}
}

// TestEvalStrictFailsFast: strict mode turns the same partial outage
// into a whole-query failure carrying the taxonomized per-site error.
func TestEvalStrictFailsFast(t *testing.T) {
	s, mem := miniTwoObjectWorld()
	cat := &downCatalog{MemCatalog: mem, down: map[string]string{"b": "b.example"}}
	q := Query{Output: []string{"K", "V"}}

	_, err := s.EvalContext(WithStrict(context.Background()), q, cat)
	if err == nil {
		t.Fatal("strict eval succeeded over a dead site")
	}
	if !web.IsOutage(err) {
		t.Errorf("strict failure not classified: %v", err)
	}
	if web.FailingHost(err) != "b.example" {
		t.Errorf("strict failure host = %q", web.FailingHost(err))
	}
}

// TestEvalCancellationIsNotDegradation: a canceled context aborts the
// query; it must never be recorded as a site failure.
func TestEvalCancellationIsNotDegradation(t *testing.T) {
	s, mem := miniTwoObjectWorld()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.EvalContext(ctx, Query{Output: []string{"K", "V"}}, mem)
	if err == nil {
		t.Skip("in-memory catalog answered before noticing cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if web.IsOutage(err) {
		t.Fatal("cancellation classified as outage")
	}
}
