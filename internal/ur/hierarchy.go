// Package ur implements the external schema layer of the webbase
// (Section 6): the structured universal relation.
//
// The end user sees a single wide relation — the universal relation — and
// queries it by naming output attributes and conditions: no joins, "sheer
// simplicity". The classical UR's lossless-join semantics and uniqueness
// assumptions do not hold on the Web, so the paper replaces them with
//
//   - a concept hierarchy organizing the UR's attributes (Figure 5), which
//     dissolves the unique-role assumption: the user disambiguates an
//     attribute by where it sits in the hierarchy; and
//   - compatibility rules R ⊕ R1…Rk ("joining R after R1…Rk makes sense")
//     and R ⊖ R1…Rk ("that join is a navigation trap"), the "poor man's
//     lossless join requirement", which replace the unique-relationship
//     assumption.
//
// Query semantics: the union, over every maximal object (maximal
// compatible set of UR relations) covering the query's attributes, of the
// join of a minimal compatible covering subset of that object.
package ur

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies concept-hierarchy nodes.
type NodeKind uint8

// Concept node kinds: a category groups alternatives or aspects, a
// relation is a UR relation (mapped onto a logical relation), an attribute
// is a leaf the user can output or constrain.
const (
	Category NodeKind = iota
	Relation
	Attribute
)

// Concept is one node of the concept hierarchy.
type Concept struct {
	Name     string
	Kind     NodeKind
	Children []*Concept
}

// Cat builds a category node.
func Cat(name string, children ...*Concept) *Concept {
	return &Concept{Name: name, Kind: Category, Children: children}
}

// Rel builds a relation node whose children are its attributes (given by
// name) or nested categories.
func Rel(name string, children ...*Concept) *Concept {
	return &Concept{Name: name, Kind: Relation, Children: children}
}

// Attr builds an attribute leaf.
func Attr(name string) *Concept {
	return &Concept{Name: name, Kind: Attribute}
}

// Attrs builds several attribute leaves.
func Attrs(names ...string) []*Concept {
	out := make([]*Concept, len(names))
	for i, n := range names {
		out[i] = Attr(n)
	}
	return out
}

// Hierarchy is the concept hierarchy of a universal relation.
type Hierarchy struct {
	Root *Concept
}

// Validate checks the structural invariants: non-nil root, attribute nodes
// are leaves, relation nodes are not nested inside relation nodes, and
// relation names are unique. Attribute names may repeat across relations —
// that is the whole point (the same Make appears under Classifieds and
// Dealers); within one relation they must be unique.
func (h *Hierarchy) Validate() error {
	if h.Root == nil {
		return fmt.Errorf("ur: hierarchy has no root")
	}
	relSeen := make(map[string]bool)
	var walk func(c *Concept, inRelation string) error
	walk = func(c *Concept, inRelation string) error {
		switch c.Kind {
		case Attribute:
			if len(c.Children) != 0 {
				return fmt.Errorf("ur: attribute %q has children", c.Name)
			}
			if inRelation == "" {
				return fmt.Errorf("ur: attribute %q is not inside a relation", c.Name)
			}
		case Relation:
			if inRelation != "" {
				return fmt.Errorf("ur: relation %q nested inside relation %q", c.Name, inRelation)
			}
			if relSeen[c.Name] {
				return fmt.Errorf("ur: duplicate relation %q", c.Name)
			}
			relSeen[c.Name] = true
			attrSeen := make(map[string]bool)
			for _, a := range attrLeaves(c) {
				if attrSeen[a] {
					return fmt.Errorf("ur: relation %q lists attribute %q twice", c.Name, a)
				}
				attrSeen[a] = true
			}
			inRelation = c.Name
		}
		for _, ch := range c.Children {
			if err := walk(ch, inRelation); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(h.Root, "")
}

func attrLeaves(c *Concept) []string {
	var out []string
	var walk func(*Concept)
	walk = func(n *Concept) {
		if n.Kind == Attribute {
			out = append(out, n.Name)
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, ch := range c.Children {
		walk(ch)
	}
	return out
}

// Relations returns the names of all relation nodes, sorted.
func (h *Hierarchy) Relations() []string {
	var out []string
	h.walk(func(c *Concept) {
		if c.Kind == Relation {
			out = append(out, c.Name)
		}
	})
	sort.Strings(out)
	return out
}

// AttrsOf returns the attribute leaves under the named relation.
func (h *Hierarchy) AttrsOf(rel string) []string {
	var node *Concept
	h.walk(func(c *Concept) {
		if c.Kind == Relation && c.Name == rel {
			node = c
		}
	})
	if node == nil {
		return nil
	}
	return attrLeaves(node)
}

// RelationsWithAttr returns the relations whose leaves include attr,
// sorted — the candidate sources the planner considers for each query
// attribute.
func (h *Hierarchy) RelationsWithAttr(attr string) []string {
	var out []string
	for _, r := range h.Relations() {
		for _, a := range h.AttrsOf(r) {
			if a == attr {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// AllAttrs returns every distinct attribute leaf, sorted: the universal
// relation's schema as presented to the user.
func (h *Hierarchy) AllAttrs() []string {
	seen := make(map[string]bool)
	h.walk(func(c *Concept) {
		if c.Kind == Attribute {
			seen[c.Name] = true
		}
	})
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (h *Hierarchy) walk(fn func(*Concept)) {
	if h.Root == nil {
		return
	}
	var rec func(*Concept)
	rec = func(c *Concept) {
		fn(c)
		for _, ch := range c.Children {
			rec(ch)
		}
	}
	rec(h.Root)
}

// String renders the hierarchy as an indented tree, the textual Figure 5.
func (h *Hierarchy) String() string {
	var sb strings.Builder
	var rec func(c *Concept, depth int)
	rec = func(c *Concept, depth int) {
		marker := ""
		switch c.Kind {
		case Relation:
			marker = " [relation]"
		case Attribute:
			marker = " [attr]"
		}
		fmt.Fprintf(&sb, "%s%s%s\n", strings.Repeat("  ", depth), c.Name, marker)
		for _, ch := range c.Children {
			rec(ch, depth+1)
		}
	}
	rec(h.Root, 0)
	return sb.String()
}
