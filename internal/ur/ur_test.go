package ur

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"webbase/internal/algebra"
	"webbase/internal/relation"
)

func TestHierarchyValidate(t *testing.T) {
	good := &Hierarchy{Root: Cat("UR",
		Rel("R", Attr("A"), Attr("B")),
		Cat("C", Rel("S", Attr("A"))),
	)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	bad := []*Hierarchy{
		{},                                    // no root
		{Root: Cat("UR", Attr("loose"))},      // attribute outside a relation
		{Root: Cat("UR", Rel("R", Rel("S")))}, // nested relations
		{Root: Cat("UR", Rel("R"), Rel("R"))}, // duplicate relation
		{Root: Cat("UR", Rel("R", Attr("A"), Attr("A")))}, // dup attr in relation
		{Root: Cat("UR", Rel("R", &Concept{Name: "A", Kind: Attribute, Children: []*Concept{Attr("B")}}))},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
	}
}

func TestHierarchyQueries(t *testing.T) {
	h := &Hierarchy{Root: Cat("UR",
		Rel("R", Attr("A"), Attr("B")),
		Rel("S", Attr("A"), Attr("C")),
	)}
	if got := h.Relations(); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Errorf("Relations = %v", got)
	}
	if got := h.AttrsOf("S"); !reflect.DeepEqual(got, []string{"A", "C"}) {
		t.Errorf("AttrsOf(S) = %v", got)
	}
	if got := h.AttrsOf("nope"); got != nil {
		t.Errorf("AttrsOf(nope) = %v", got)
	}
	if got := h.RelationsWithAttr("A"); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Errorf("RelationsWithAttr(A) = %v", got)
	}
	if got := h.AllAttrs(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("AllAttrs = %v", got)
	}
	s := h.String()
	if !strings.Contains(s, "[relation]") || !strings.Contains(s, "[attr]") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestCompatible(t *testing.T) {
	rules := []Rule{
		Plus("A"),
		Plus("B", "A"),
		Minus("C", "A", "B"),
		Plus("C", "A"),
	}
	cases := []struct {
		set  []string
		want bool
	}{
		{[]string{"A"}, true},
		{[]string{"B"}, false}, // B needs A
		{[]string{"A", "B"}, true},
		{[]string{"A", "C"}, true},       // C ⊕ A
		{[]string{"A", "B", "C"}, false}, // C ⊖ {A, B}
		{[]string{"D"}, false},           // no positive rule at all
	}
	for _, c := range cases {
		if got := Compatible(c.set, rules); got != c.want {
			t.Errorf("Compatible(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestCompatibleMutualDependency(t *testing.T) {
	// A ⊕ B and B ⊕ A: only the pair is compatible; enumeration must
	// still find it (non-monotone compatibility).
	rules := []Rule{Plus("A", "B"), Plus("B", "A")}
	if Compatible([]string{"A"}, rules) || Compatible([]string{"B"}, rules) {
		t.Error("singletons should be incompatible")
	}
	if !Compatible([]string{"A", "B"}, rules) {
		t.Error("pair should be compatible")
	}
	objs := MaximalObjects([]string{"A", "B"}, rules)
	if len(objs) != 1 || !reflect.DeepEqual(objs[0], []string{"A", "B"}) {
		t.Errorf("maximal objects = %v", objs)
	}
}

// TestExample62MaximalObjects reproduces the paper's Example 6.2: the
// compatibility constraints generate exactly the five listed maximal
// objects, with TradeInValue excluded from all.
func TestExample62MaximalObjects(t *testing.T) {
	s, err := Example62()
	if err != nil {
		t.Fatal(err)
	}
	got := s.MaximalObjects()
	want := [][]string{
		{"Classifieds", "Loan", "FullCoverage", "RetailValue"},
		{"Classifieds", "Loan", "Liability", "RetailValue"},
		{"Dealers", "Lease", "FullCoverage", "RetailValue"},
		{"Dealers", "Loan", "FullCoverage", "RetailValue"},
		{"Dealers", "Loan", "Liability", "RetailValue"},
	}
	if len(got) != len(want) {
		t.Fatalf("maximal objects:\n%v\nwant:\n%v", got, want)
	}
	// Compare as sets of sets (both sorted lexicographically, but member
	// order inside differs: ours is alphabetical).
	toKey := func(ss [][]string) map[string]bool {
		m := make(map[string]bool)
		for _, s := range ss {
			sorted := append([]string(nil), s...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			m[strings.Join(sorted, "+")] = true
		}
		return m
	}
	gk, wk := toKey(got), toKey(want)
	if !reflect.DeepEqual(gk, wk) {
		t.Errorf("objects =\n%v\nwant\n%v", gk, wk)
	}
	for _, o := range got {
		for _, r := range o {
			if r == "TradeInValue" {
				t.Error("TradeInValue must not appear in any maximal object")
			}
		}
	}
}

func TestNewSchemaValidation(t *testing.T) {
	h := &Hierarchy{Root: Cat("UR", Rel("R", Attr("A")))}
	if _, err := NewSchema("x", h, []Rule{Plus("Ghost")}, nil); err == nil {
		t.Error("rule targeting unknown relation accepted")
	}
	if _, err := NewSchema("x", h, []Rule{Plus("R", "Ghost")}, nil); err == nil {
		t.Error("rule referencing unknown relation accepted")
	}
	if _, err := NewSchema("x", h, nil, nil); err == nil {
		t.Error("schema with no compatible sets accepted")
	}
	if _, err := NewSchema("x", h, []Rule{Plus("R")}, nil); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

// memLogical builds a small in-memory "logical layer" for planner tests:
// ads(Make, Price), book(Make, BBPrice), safety(Make, Safety).
func memLogical() (*Schema, *algebra.MemCatalog) {
	h := &Hierarchy{Root: Cat("UR",
		Rel("Ads", Attr("Make"), Attr("Price")),
		Rel("Book", Attr("Make"), Attr("BBPrice")),
		Rel("Safety", Attr("Make"), Attr("Safety")),
	)}
	rules := []Rule{
		Plus("Ads"),
		Plus("Book", "Ads"),
		Plus("Safety", "Ads"),
	}
	s, err := NewSchema("mini", h, rules, map[string]string{
		"Ads": "ads", "Book": "book", "Safety": "safety",
	})
	if err != nil {
		panic(err)
	}
	cat := algebra.NewMemCatalog()
	ads := relation.New("ads", relation.NewSchema("Make", "Price"))
	ads.MustInsert(relation.String("ford"), relation.Int(3000))
	ads.MustInsert(relation.String("jaguar"), relation.Int(16000))
	ads.MustInsert(relation.String("jaguar"), relation.Int(24000))
	cat.Add(ads, relation.NewAttrSet("Make"))
	book := relation.New("book", relation.NewSchema("Make", "BBPrice"))
	book.MustInsert(relation.String("ford"), relation.Int(3500))
	book.MustInsert(relation.String("jaguar"), relation.Int(20000))
	cat.Add(book, relation.NewAttrSet("Make"))
	safety := relation.New("safety", relation.NewSchema("Make", "Safety"))
	safety.MustInsert(relation.String("jaguar"), relation.String("good"))
	safety.MustInsert(relation.String("ford"), relation.String("average"))
	cat.Add(safety, relation.NewAttrSet("Make"))
	return s, cat
}

func TestPlanMinimalCover(t *testing.T) {
	s, _ := memLogical()
	q := Query{
		Output: []string{"Make", "Price"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: relation.String("jaguar")},
		},
	}
	plan, err := s.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Objects) != 1 {
		t.Fatalf("plan objects = %d", len(plan.Objects))
	}
	// Only Ads is needed: the cover must be minimal, not the whole
	// maximal object.
	if !reflect.DeepEqual(plan.Objects[0].Relations, []string{"Ads"}) {
		t.Errorf("cover = %v, want [Ads]", plan.Objects[0].Relations)
	}
	if !strings.Contains(plan.String(), "Ads") {
		t.Error("plan rendering")
	}
}

func TestPlanErrors(t *testing.T) {
	s, _ := memLogical()
	if _, err := s.Plan(Query{Output: []string{"Nope"}}); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.Plan(Query{}); err == nil {
		t.Error("empty output accepted")
	}
	if _, err := s.Plan(Query{Output: []string{"Make", "Make"}}); err == nil {
		t.Error("duplicate output attribute accepted")
	}
}

func TestEvalCrossRelationQuery(t *testing.T) {
	s, cat := memLogical()
	q := Query{
		Output: []string{"Make", "Price", "BBPrice"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: relation.String("jaguar")},
			{Attr: "Safety", Op: algebra.EQ, Val: relation.String("good")},
			{Attr: "Price", Op: algebra.LT, Attr2: "BBPrice"},
		},
	}
	res, err := s.Eval(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Relation.Len(), res.Relation)
	}
	p, _ := res.Relation.Get(res.Relation.Tuples()[0], "Price")
	if p.IntVal() != 16000 {
		t.Errorf("price = %v", p)
	}
	if len(res.Skipped) != 0 {
		t.Errorf("skipped = %v", res.Skipped)
	}
}

func TestEvalSkipsUnboundObjects(t *testing.T) {
	// A query whose attributes live in a relation that cannot be bound
	// from the query: the object is skipped and reported.
	s, cat := memLogical()
	q := Query{Output: []string{"Make", "Price"}} // no Make constant at all
	_, err := s.Eval(q, cat)
	if err == nil {
		t.Error("expected failure when every object is unbindable")
	}
}

func TestUsedCarURConstruction(t *testing.T) {
	s, err := UsedCarUR()
	if err != nil {
		t.Fatal(err)
	}
	objs := s.MaximalObjects()
	if len(objs) != 2 {
		t.Fatalf("maximal objects = %v", objs)
	}
	// One object per ad source, each with every companion relation.
	for _, o := range objs {
		if len(o) != 5 {
			t.Errorf("object size = %d: %v", len(o), o)
		}
	}
	if s.LogicalName("Safety") != "reliability" || s.LogicalName("Unmapped") != "Unmapped" {
		t.Error("mapping wrong")
	}
	// The universal relation the user sees.
	attrs := s.Hierarchy.AllAttrs()
	for _, want := range []string{"Make", "Price", "BBPrice", "Safety", "Rate", "Reliability"} {
		found := false
		for _, a := range attrs {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("UR missing attribute %q", want)
		}
	}
}

func TestParseQuery(t *testing.T) {
	s, _ := memLogical()
	q, err := ParseQuery(s, `SELECT Make, Price WHERE Make = 'jaguar' AND Price < BBPrice AND BBPrice >= 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Output, []string{"Make", "Price"}) {
		t.Errorf("output = %v", q.Output)
	}
	if len(q.Conditions) != 3 {
		t.Fatalf("conditions = %v", q.Conditions)
	}
	if q.Conditions[0].Val.Str() != "jaguar" || q.Conditions[0].Op != algebra.EQ {
		t.Errorf("cond0 = %v", q.Conditions[0])
	}
	if q.Conditions[1].Attr2 != "BBPrice" || q.Conditions[1].Op != algebra.LT {
		t.Errorf("cond1 = %v (attr-attr comparison expected)", q.Conditions[1])
	}
	if q.Conditions[2].Val.IntVal() != 1000 || q.Conditions[2].Op != algebra.GE {
		t.Errorf("cond2 = %v", q.Conditions[2])
	}
	// Case-insensitive keywords, no where clause.
	q2, err := ParseQuery(s, "select Make")
	if err != nil || len(q2.Output) != 1 || len(q2.Conditions) != 0 {
		t.Errorf("q2 = %v, %v", q2, err)
	}
	// Errors.
	for _, bad := range []string{"", "WHERE x=1", "SELECT", "SELECT a WHERE junk", "SELECT a WHERE x ~ 1"} {
		if _, err := ParseQuery(s, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseQueryOrderByLimit(t *testing.T) {
	s, cat := memLogical()
	q, err := ParseQuery(s, "SELECT Make, Price WHERE Make = 'jaguar' ORDER BY Price DESC, Make LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Attr != "Price" || q.OrderBy[1].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
	// Eval applies ordering and limit.
	res, err := s.Eval(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	prices := res.Relation.Tuples()
	for i := 1; i < len(prices); i++ {
		a, _ := res.Relation.Get(prices[i-1], "Price")
		b, _ := res.Relation.Get(prices[i], "Price")
		if a.FloatVal() < b.FloatVal() {
			t.Fatalf("not descending: %v then %v", a, b)
		}
	}
	// ASC keyword accepted; bad clauses rejected.
	if _, err := ParseQuery(s, "SELECT Make ORDER BY Make ASC"); err != nil {
		t.Errorf("ASC rejected: %v", err)
	}
	for _, bad := range []string{
		"SELECT Make LIMIT x",
		"SELECT Make LIMIT -1",
		"SELECT Make ORDER BY",
		"SELECT Make ORDER BY Price SIDEWAYS",
	} {
		if _, err := ParseQuery(s, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Rendering includes the new clauses.
	str := q.String()
	if !strings.Contains(str, "ORDER BY Price DESC, Make") || !strings.Contains(str, "LIMIT 5") {
		t.Errorf("rendering: %s", str)
	}
}

// Malformed ORDER BY shapes must be rejected loudly, not silently
// repaired: a trailing comma would sort on fewer keys than written, and a
// duplicate key is a typo the stable sort would mask forever. Every parse
// error classifies as ErrBadQuery.
func TestParseQueryBadOrderBy(t *testing.T) {
	s, _ := memLogical()
	cases := []struct {
		name, query, wantMsg string
	}{
		{"trailing-comma", "SELECT Make ORDER BY Make,", "trailing comma"},
		{"double-comma", "SELECT Make ORDER BY Make, , Price", "trailing comma"},
		{"duplicate-key", "SELECT Make ORDER BY Price, Price", "duplicate ORDER BY key"},
		{"duplicate-key-desc", "SELECT Make ORDER BY Price DESC, Make, Price", "duplicate ORDER BY key"},
		{"duplicate-key-asc", "SELECT Make ORDER BY Price ASC, Price DESC", "duplicate ORDER BY key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQuery(s, tc.query)
			if err == nil {
				t.Fatalf("accepted %q", tc.query)
			}
			if !errors.Is(err, ErrBadQuery) {
				t.Errorf("error %v does not wrap ErrBadQuery", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
	// Distinct keys with mixed directions still parse.
	q, err := ParseQuery(s, "SELECT Make ORDER BY Price DESC, Make ASC")
	if err != nil || len(q.OrderBy) != 2 {
		t.Errorf("distinct keys rejected: %v %v", q.OrderBy, err)
	}
	// The whole parse-error taxonomy classifies as ErrBadQuery.
	for _, bad := range []string{"", "SELECT", "SELECT a LIMIT x", "SELECT a WHERE junk"} {
		if _, err := ParseQuery(s, bad); !errors.Is(err, ErrBadQuery) {
			t.Errorf("%q: error %v does not wrap ErrBadQuery", bad, err)
		}
	}
}

func TestQueryStringAndAttrs(t *testing.T) {
	q := Query{
		Output: []string{"Make", "Price"},
		Conditions: []algebra.Condition{
			{Attr: "Year", Op: algebra.GE, Val: relation.Int(1993)},
			{Attr: "Price", Op: algebra.LT, Attr2: "BBPrice"},
		},
	}
	s := q.String()
	if !strings.Contains(s, "SELECT Make, Price") || !strings.Contains(s, "Year ≥ 1993") {
		t.Errorf("rendering: %s", s)
	}
	attrs := q.Attrs()
	want := []string{"BBPrice", "Make", "Price", "Year"}
	if !reflect.DeepEqual(attrs, want) {
		t.Errorf("attrs = %v, want %v", attrs, want)
	}
}

func TestRuleString(t *testing.T) {
	if got := Plus("A", "B", "C").String(); got != "A ⊕ B, C" {
		t.Errorf("plus = %q", got)
	}
	if got := Minus("A", "B").String(); got != "A ⊖ B" {
		t.Errorf("minus = %q", got)
	}
	if got := Plus("A").String(); got != "A ⊕ ∅" {
		t.Errorf("empty = %q", got)
	}
}
