package ur

import (
	"testing"
)

// FuzzParseQuery drives the end-user query parser with arbitrary text: it
// must never panic, must terminate, and every successful parse must
// satisfy the Query invariants the planner depends on. The seed corpus is
// the golden queries exercised across the used-car and apartment domains
// plus the malformed shapes the parser rejects by hand. Run with
// `go test -fuzz=FuzzParseQuery ./internal/ur` to search beyond the seeds.
func FuzzParseQuery(f *testing.F) {
	schema, err := UsedCarUR()
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		// Golden queries from the used-car domain.
		"SELECT Make, Model, Year, Price, BBPrice, Contact WHERE Make = 'jaguar' AND Year >= 1993 AND Safety = 'good' AND Condition = 'good' AND Price < BBPrice",
		"SELECT Make, Model, Year, Price WHERE Make = 'ford' AND Model = 'escort'",
		"SELECT Make, Model, Year, Price, Safety WHERE Make = 'honda' AND Model = 'civic'",
		"SELECT Make, Model, Year, Price WHERE Make = 'saab' ORDER BY Price LIMIT 3",
		"SELECT Make, Price WHERE Make = 'jaguar' AND Year >= 1993 AND Price < BBPrice AND Condition = 'good'",
		// Golden queries from the apartment domain (parsed against the
		// used-car UR these are just unknown attributes, still legal text).
		"SELECT Neighborhood, Bedrooms, Rent, MedianRent, CrimeRate, Contact WHERE Borough = 'brooklyn' AND Bedrooms = 2 AND Rent < MedianRent",
		"SELECT Neighborhood, Rent, Fee WHERE Borough = 'manhattan' AND Bedrooms = 1 ORDER BY Fee LIMIT 5",
		// Clause soup and shapes the parser rejects.
		"",
		"select",
		"SELECT",
		"SELECT WHERE LIMIT",
		"SELECT Make WHERE",
		"SELECT Make WHERE Make",
		"SELECT Make WHERE Make = ",
		"SELECT Make WHERE = 'ford'",
		"SELECT Make WHERE Make = 'unterminated",
		"SELECT Make ORDER BY",
		"SELECT Make ORDER BY Price wat",
		"SELECT Make LIMIT -1",
		"SELECT Make LIMIT nine",
		"SELECT Make, , Model",
		"SELECT Make WHERE Price <= BBPrice AND Year != 1993 AND Make > 'a'",
		"select make, model where make = \"ford\" order by year desc, price limit 2",
		"SELECT Make WHERE Make = 'a' AND AND Year = 1",
		"SELECT Make WHERE androids and and",
		// Pruning-relevant shapes: constant selections (satisfiable and
		// statically unsatisfiable), LIMIT 0/1/n, discharged and
		// undischarged ORDER BY keys.
		"SELECT Make, Model WHERE Make = 'jaguar' AND Make = 'ford'",
		"SELECT Make, Year WHERE Year >= 1995 AND Year <= 1992",
		"SELECT Make, Model, Price WHERE Make = 'ford' LIMIT 0",
		"SELECT Make, Model, Price WHERE Make = 'ford' LIMIT 1",
		"SELECT Make, Model, Price WHERE Make = 'ford' LIMIT 3",
		"SELECT Make, Model, Price WHERE Make = 'jaguar' ORDER BY Make LIMIT 2",
		"SELECT Make, Model, Price WHERE Make = 'ford' ORDER BY Price DESC LIMIT 2",
		// Rejected ORDER BY shapes: trailing comma, duplicate sort key.
		"SELECT Make ORDER BY Make,",
		"SELECT Make ORDER BY Make, , Price",
		"SELECT Make ORDER BY Price, Price",
		"SELECT Make ORDER BY Price DESC, Price ASC",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := ParseQuery(schema, text)
		if err != nil {
			return
		}
		// Invariants of a successful parse.
		if len(q.Output) == 0 {
			t.Fatalf("parse of %q succeeded with no output attributes", text)
		}
		for _, a := range q.Output {
			if a == "" {
				t.Fatalf("parse of %q produced an empty output attribute", text)
			}
		}
		for _, c := range q.Conditions {
			if c.Attr == "" {
				t.Fatalf("parse of %q produced a condition without an attribute", text)
			}
		}
		sortKeys := make(map[string]bool)
		for _, k := range q.OrderBy {
			if k.Attr == "" {
				t.Fatalf("parse of %q produced an ORDER BY key without an attribute", text)
			}
			if sortKeys[k.Attr] {
				t.Fatalf("parse of %q produced duplicate ORDER BY key %q", text, k.Attr)
			}
			sortKeys[k.Attr] = true
		}
		if q.Limit < 0 {
			t.Fatalf("parse of %q produced negative LIMIT %d", text, q.Limit)
		}
		// Parsing is deterministic: a second parse agrees exactly.
		q2, err := ParseQuery(schema, text)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", text, err)
		}
		if q.String() != q2.String() {
			t.Fatalf("reparse of %q disagrees:\n%s\n%s", text, q, q2)
		}
	})
}
