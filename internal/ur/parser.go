package ur

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"webbase/internal/algebra"
	"webbase/internal/relation"
)

// ErrBadQuery is the taxonomy sentinel for malformed query text. Every
// syntax error ParseQuery reports wraps it, so callers (and the HTTP
// server's 400 mapping) can classify with errors.Is instead of matching
// message strings.
var ErrBadQuery = errors.New("ur: bad query")

func badQueryf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

// ParseQuery parses the ad hoc query syntax the CLI exposes to end users:
//
//	SELECT attr, attr, ...
//	  [WHERE attr op value [AND ...]]
//	  [ORDER BY attr [DESC] [, attr [DESC]]]
//	  [LIMIT n]
//
// where op is one of = != < <= > >=. The right-hand side of a condition is
// a constant (quoted or bare; bare numerics parse as numbers) or, when it
// names an attribute of the universal relation, an attribute-to-attribute
// comparison — which is how "Price < BBPrice" works. Keywords are
// case-insensitive.
func ParseQuery(s *Schema, text string) (Query, error) {
	var q Query
	rest := strings.TrimSpace(text)
	if len(rest) < 6 || !strings.EqualFold(rest[:6], "select") {
		return q, badQueryf("query must start with SELECT: %q", text)
	}
	rest = rest[6:]

	// Peel trailing clauses right to left: LIMIT, then ORDER BY.
	if i := indexFold(rest, "limit"); i >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(rest[i+5:]))
		if err != nil || n < 0 {
			return q, badQueryf("bad LIMIT in %q", text)
		}
		q.Limit = n
		rest = rest[:i]
	}
	if i := indexFold(rest, "order by"); i >= 0 {
		seen := make(map[string]bool)
		for _, part := range strings.Split(rest[i+8:], ",") {
			if strings.TrimSpace(part) == "" {
				// A trailing comma (or ", ,") yields an empty term.
				// Rejecting it loudly beats silently sorting on fewer
				// keys than the user wrote.
				return q, badQueryf("empty ORDER BY term (trailing comma?) in %q", text)
			}
			fields := strings.Fields(part)
			switch {
			case len(fields) == 1:
				q.OrderBy = append(q.OrderBy, relation.SortKey{Attr: fields[0]})
			case len(fields) == 2 && strings.EqualFold(fields[1], "desc"):
				q.OrderBy = append(q.OrderBy, relation.SortKey{Attr: fields[0], Desc: true})
			case len(fields) == 2 && strings.EqualFold(fields[1], "asc"):
				q.OrderBy = append(q.OrderBy, relation.SortKey{Attr: fields[0]})
			default:
				return q, badQueryf("bad ORDER BY term %q", strings.TrimSpace(part))
			}
			key := q.OrderBy[len(q.OrderBy)-1].Attr
			if seen[key] {
				// A duplicate key is always a typo: the second
				// occurrence can never influence the stable sort.
				return q, badQueryf("duplicate ORDER BY key %q in %q", key, text)
			}
			seen[key] = true
		}
		if len(q.OrderBy) == 0 {
			return q, badQueryf("empty ORDER BY in %q", text)
		}
		rest = rest[:i]
	}

	wherePart := ""
	if i := indexFold(rest, "where"); i >= 0 {
		wherePart = strings.TrimSpace(rest[i+5:])
		rest = rest[:i]
	}
	for _, a := range strings.Split(rest, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		q.Output = append(q.Output, a)
	}
	if len(q.Output) == 0 {
		return q, badQueryf("no output attributes in %q", text)
	}
	if wherePart == "" {
		return q, nil
	}
	attrs := make(map[string]bool)
	for _, a := range s.Hierarchy.AllAttrs() {
		attrs[a] = true
	}
	for _, clause := range splitFold(wherePart, "and") {
		cond, err := parseCondition(strings.TrimSpace(clause), attrs)
		if err != nil {
			return q, err
		}
		q.Conditions = append(q.Conditions, cond)
	}
	return q, nil
}

// ops in length order so that "<=" is tried before "<".
var condOps = []struct {
	text string
	op   algebra.CmpOp
}{
	{"<=", algebra.LE}, {">=", algebra.GE}, {"!=", algebra.NE},
	{"=", algebra.EQ}, {"<", algebra.LT}, {">", algebra.GT},
}

func parseCondition(clause string, attrs map[string]bool) (algebra.Condition, error) {
	for _, o := range condOps {
		i := strings.Index(clause, o.text)
		if i < 0 {
			continue
		}
		lhs := strings.TrimSpace(clause[:i])
		rhs := strings.TrimSpace(clause[i+len(o.text):])
		if lhs == "" || rhs == "" {
			return algebra.Condition{}, badQueryf("malformed condition %q", clause)
		}
		cond := algebra.Condition{Attr: lhs, Op: o.op}
		if unq, quoted := unquote(rhs); quoted {
			cond.Val = relation.String(unq)
		} else if attrs[rhs] {
			cond.Attr2 = rhs
		} else {
			cond.Val = relation.Parse(rhs)
		}
		return cond, nil
	}
	return algebra.Condition{}, badQueryf("no comparison operator in condition %q", clause)
}

func unquote(s string) (string, bool) {
	if len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1], true
	}
	return s, false
}

// indexFold finds the first case-insensitive occurrence of the word,
// delimited by spaces or string boundaries. It matches in place with
// EqualFold rather than searching a ToLower'd copy: lowering can change
// the byte length of malformed or non-ASCII input, and an index into the
// lowered string is then not a valid index into s (the fuzzer found the
// resulting slice panic). word must be ASCII, so an equal-byte-length
// fold match can only ever be an ASCII match.
func indexFold(s, word string) int {
	lw := len(word)
	for i := 0; i+lw <= len(s); i++ {
		if !strings.EqualFold(s[i:i+lw], word) {
			continue
		}
		beforeOK := i == 0 || s[i-1] == ' '
		after := i + lw
		afterOK := after == len(s) || s[after] == ' '
		if beforeOK && afterOK {
			return i
		}
	}
	return -1
}

// splitFold splits on the standalone word (case-insensitive).
func splitFold(s, word string) []string {
	var out []string
	for {
		i := indexFold(s, word)
		if i < 0 {
			out = append(out, s)
			return out
		}
		out = append(out, s[:i])
		s = s[i+len(word):]
	}
}
