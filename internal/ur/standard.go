package ur

// UsedCarUR builds the structured universal relation of the used-car
// webbase (Example 2.1 / Figure 5), mapped onto the standard logical
// catalog's views. Its attributes are the union of the logical layer's
// attributes; the compatibility rules connect ads (from one source at a
// time) with blue book prices, safety, reliability reviews and financing.
func UsedCarUR() (*Schema, error) {
	h := &Hierarchy{Root: Cat("UsedCarUR",
		Cat("Source",
			Rel("Classifieds", Attrs("Make", "Model", "Year", "Price", "Contact", "Features")...),
			Rel("Dealers", Attrs("Make", "Model", "Year", "Price", "Features", "ZipCode", "Contact")...),
		),
		Cat("BlueBook",
			Rel("BluePrice", Attrs("Make", "Model", "Year", "Condition", "BBPrice")...),
		),
		Cat("Ratings",
			Rel("Safety", Attrs("Make", "Model", "Safety")...),
			Rel("Reviews", Attrs("Make", "Model", "Reliability")...),
		),
		Cat("Financing",
			Rel("Interest", Attrs("ZipCode", "Duration", "Rate")...),
		),
	)}
	rules := []Rule{
		// Either ad source can start a query.
		Plus("Classifieds"),
		Plus("Dealers"),
		// ...but a single car ad comes from exactly one source: joining
		// both is a navigation trap.
		Minus("Classifieds", "Dealers"),
		// Blue book, safety and reviews make sense for any advertised car.
		Plus("BluePrice", "Classifieds"),
		Plus("BluePrice", "Dealers"),
		Plus("Safety", "Classifieds"),
		Plus("Safety", "Dealers"),
		Plus("Reviews", "Classifieds"),
		Plus("Reviews", "Dealers"),
		// Financing attaches to a purchase from either source.
		Plus("Interest", "Classifieds"),
		Plus("Interest", "Dealers"),
	}
	mapping := map[string]string{
		"Classifieds": "classifieds",
		"Dealers":     "dealers",
		"BluePrice":   "bluePrice",
		"Safety":      "reliability",
		"Reviews":     "reviews",
		"Interest":    "interest",
	}
	return NewSchema("UsedCarUR", h, rules, mapping)
}

// Example62 builds the exact configuration of the paper's Example 6.2 —
// the UsedCarUR with dealer/classified sources, lease/loan financing,
// full/liability insurance and retail/trade-in blue book values — whose
// compatibility constraints generate precisely the five maximal objects
// the paper lists:
//
//	Dealers ⋈ Lease ⋈ Full ⋈ RetailVal
//	Dealers ⋈ Loan ⋈ Full ⋈ RetailVal
//	Dealers ⋈ Loan ⋈ Liability ⋈ RetailVal
//	Classifieds ⋈ Loan ⋈ Liability ⋈ RetailVal
//	Classifieds ⋈ Loan ⋈ Full ⋈ RetailVal
//
// This schema is symbolic (it exists to reproduce the example's object
// enumeration); it is not mapped onto the simulated logical layer.
func Example62() (*Schema, error) {
	h := &Hierarchy{Root: Cat("UsedCarUR",
		Cat("UsedCar",
			Rel("Dealers", Attrs("Car", "Price", "Contact")...),
			Rel("Classifieds", Attrs("Car", "Price", "Contact")...),
		),
		Cat("Rate",
			Rel("Lease", Attrs("Car", "LeaseRate")...),
			Rel("Loan", Attrs("Car", "LoanRate")...),
		),
		Cat("Insurance",
			Rel("FullCoverage", Attrs("Car", "FullCost")...),
			Rel("Liability", Attrs("Car", "LiabilityCost")...),
		),
		Cat("Value",
			Rel("RetailValue", Attrs("Car", "BBPrice")...),
			Rel("TradeInValue", Attrs("Car", "TradeIn")...),
		),
	)}
	rules := []Rule{
		Plus("Dealers"),
		Plus("Classifieds"),
		// Ads come from one source.
		Minus("Dealers", "Classifieds"),
		// Financing: loans from either source; "we cannot lease a car
		// from its owner" (Example 6.2).
		Plus("Loan", "Dealers"),
		Plus("Loan", "Classifieds"),
		Plus("Lease", "Dealers"),
		Minus("Lease", "Classifieds"),
		// One financing mode at a time.
		Minus("Lease", "Loan"),
		// Insurance attaches to financing; "leased cars have to be fully
		// insured".
		Plus("FullCoverage", "Loan"),
		Plus("FullCoverage", "Lease"),
		Plus("Liability", "Loan"),
		Minus("Liability", "Lease"),
		// One coverage at a time.
		Minus("FullCoverage", "Liability"),
		// Retail value applies to any advertised used car; "trade-in
		// values are not applicable" to used-car purchases, so
		// TradeInValue has no positive rule and never joins.
		Plus("RetailValue", "Dealers"),
		Plus("RetailValue", "Classifieds"),
	}
	return NewSchema("UsedCarUR-Example6.2", h, rules, nil)
}
