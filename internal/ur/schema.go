package ur

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"webbase/internal/algebra"
	"webbase/internal/prune"
	"webbase/internal/relation"
	"webbase/internal/trace"
	"webbase/internal/web"
)

// Schema is a structured universal relation for one application domain:
// the concept hierarchy the user browses, the compatibility rules, and the
// mapping of UR relations onto logical relations.
type Schema struct {
	Name      string
	Hierarchy *Hierarchy
	Rules     []Rule
	// Mapping sends UR relation names to logical relation names. UR
	// relations absent from the map are assumed to map to the logical
	// relation of the same name.
	Mapping map[string]string

	// maximal objects are precomputed at construction.
	objects [][]string
}

// NewSchema validates and assembles a UR schema, precomputing its maximal
// objects.
func NewSchema(name string, h *Hierarchy, rules []Rule, mapping map[string]string) (*Schema, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	rels := h.Relations()
	known := make(map[string]bool, len(rels))
	for _, r := range rels {
		known[r] = true
	}
	for _, rule := range rules {
		if !known[rule.Target] {
			return nil, fmt.Errorf("ur: rule %s targets unknown relation", rule)
		}
		for _, c := range rule.Context {
			if !known[c] {
				return nil, fmt.Errorf("ur: rule %s references unknown relation %q", rule, c)
			}
		}
	}
	s := &Schema{Name: name, Hierarchy: h, Rules: rules, Mapping: mapping}
	s.objects = MaximalObjects(rels, rules)
	if len(s.objects) == 0 {
		return nil, fmt.Errorf("ur: schema %s has no compatible relation sets — check the ⊕ rules", name)
	}
	return s, nil
}

// MaximalObjects returns the precomputed maximal objects.
func (s *Schema) MaximalObjects() [][]string { return s.objects }

// LogicalName maps a UR relation to its logical relation.
func (s *Schema) LogicalName(urRel string) string {
	if n, ok := s.Mapping[urRel]; ok {
		return n
	}
	return urRel
}

// Query is a universal relation query: output attributes plus conditions —
// "the user simply points to a set of output attributes and imposes
// conditions on some other attributes. This is it: no joins, sheer
// simplicity."
type Query struct {
	Output     []string
	Conditions []algebra.Condition
	// OrderBy sorts the final answer; Limit truncates it (0 = all).
	// Presentation only — they do not affect planning.
	OrderBy []relation.SortKey
	Limit   int
}

// Attrs returns every attribute the query mentions.
func (q Query) Attrs() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range q.Output {
		add(a)
	}
	for _, c := range q.Conditions {
		add(c.Attr)
		add(c.Attr2)
	}
	sort.Strings(out)
	return out
}

// String renders the query.
func (q Query) String() string {
	var conds []string
	for _, c := range q.Conditions {
		conds = append(conds, c.String())
	}
	out := "SELECT " + strings.Join(q.Output, ", ")
	if len(conds) > 0 {
		out += " WHERE " + strings.Join(conds, " AND ")
	}
	if len(q.OrderBy) > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, k := range q.OrderBy {
			keys[i] = k.Attr
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		out += " ORDER BY " + strings.Join(keys, ", ")
	}
	if q.Limit > 0 {
		out += fmt.Sprintf(" LIMIT %d", q.Limit)
	}
	return out
}

// PlanObject is the query plan contribution of one maximal object: the
// minimal compatible covering subset of its UR relations and the algebra
// expression (over logical relations) computing its answers.
type PlanObject struct {
	Object    []string // the maximal object
	Relations []string // the minimal covering subset actually joined
	Expr      algebra.Expr
}

// Plan is a full UR query plan: one expression per qualifying maximal
// object; the answer is the union of their results.
type Plan struct {
	Query   Query
	Objects []PlanObject
}

// String renders the plan in the style of Example 6.2's object listing.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Query)
	for _, o := range p.Objects {
		fmt.Fprintf(&sb, "  object {%s} → join(%s)\n",
			strings.Join(o.Object, " ⋈ "), strings.Join(o.Relations, ", "))
	}
	return sb.String()
}

// Errors reported by the planner.
var (
	ErrUnknownAttribute = errors.New("ur: attribute not in the universal relation")
	ErrNotCoverable     = errors.New("ur: no maximal object covers the query attributes")
)

// Plan compiles a UR query: for every maximal object whose attributes
// cover the query's, it selects the minimal (smallest, ties broken
// deterministically) compatible subset of the object that still covers the
// query, and builds the join-select-project expression over the mapped
// logical relations. Plans from objects that produce identical relation
// subsets are deduplicated.
func (s *Schema) Plan(q Query) (*Plan, error) {
	attrs := q.Attrs()
	if len(q.Output) == 0 {
		return nil, fmt.Errorf("ur: query has no output attributes")
	}
	outSeen := make(map[string]bool, len(q.Output))
	for _, a := range q.Output {
		if outSeen[a] {
			return nil, fmt.Errorf("ur: output attribute %q listed twice", a)
		}
		outSeen[a] = true
	}
	for _, a := range attrs {
		if len(s.Hierarchy.RelationsWithAttr(a)) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttribute, a)
		}
	}
	plan := &Plan{Query: q}
	seen := make(map[string]bool)
	for _, obj := range s.objects {
		if !coversAll(s.Hierarchy, obj, attrs) {
			continue
		}
		sub := s.minimalCover(obj, attrs)
		if sub == nil {
			continue
		}
		key := strings.Join(sub, ",")
		if seen[key] {
			continue
		}
		seen[key] = true
		expr, err := s.buildExpr(sub, q)
		if err != nil {
			return nil, err
		}
		plan.Objects = append(plan.Objects, PlanObject{Object: obj, Relations: sub, Expr: expr})
	}
	if len(plan.Objects) == 0 {
		return nil, fmt.Errorf("%w: attributes %v (objects: %v)", ErrNotCoverable, attrs, s.objects)
	}
	return plan, nil
}

// minimalCover finds the smallest compatible subset of object covering the
// attributes; among equal sizes the lexicographically first is taken.
func (s *Schema) minimalCover(object, attrs []string) []string {
	n := len(object)
	var best []string
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, object[i])
			}
		}
		if best != nil && len(sub) >= len(best) {
			continue
		}
		if !coversAll(s.Hierarchy, sub, attrs) || !Compatible(sub, s.Rules) {
			continue
		}
		best = sub
	}
	return best
}

func coversAll(h *Hierarchy, rels, attrs []string) bool {
	have := make(map[string]bool)
	for _, r := range rels {
		for _, a := range h.AttrsOf(r) {
			have[a] = true
		}
	}
	for _, a := range attrs {
		if !have[a] {
			return false
		}
	}
	return true
}

// buildExpr assembles σ[conditions](⋈ mapped relations) projected onto the
// output attributes.
func (s *Schema) buildExpr(rels []string, q Query) (algebra.Expr, error) {
	scans := make([]algebra.Expr, len(rels))
	for i, r := range rels {
		scans[i] = &algebra.Scan{Relation: s.LogicalName(r)}
	}
	var expr algebra.Expr = algebra.JoinAll(scans...)
	for _, c := range q.Conditions {
		expr = &algebra.Select{Input: expr, Cond: c}
	}
	return &algebra.Project{Input: expr, Attrs: q.Output}, nil
}

// Result is the outcome of evaluating a UR query.
type Result struct {
	Relation *relation.Relation
	Plan     *Plan
	// Skipped lists maximal objects whose evaluation was abandoned
	// because some mandatory binding could not be supplied from the
	// query; their answers are missing from Relation (the relaxed,
	// partial-answer semantics).
	Skipped []string
	// Degradation reports fault-tolerance events: maximal objects
	// abandoned because their sites were unreachable, and pages served
	// stale. nil when the query ran fully healthy.
	Degradation *Degradation
}

// Degradation is the structured report of how a query's answer fell
// short of (or risked falling short of) the fully-healthy answer. The
// answer in Result.Relation is exactly the union of the surviving
// maximal objects — correct tuples, possibly fewer of them.
type Degradation struct {
	// Unavailable lists maximal objects abandoned because a site they
	// depend on failed terminally (outage class).
	Unavailable []SiteFailure
	// StaleServed counts pages served from expired cache entries because
	// the network path failed (filled in by the core layer).
	StaleServed int64
}

// Failure kinds attributed to an abandoned maximal object. An outage is a
// site that would not answer (network fault, terminal HTTP status); drift
// is a site that answered but whose pages no longer match its navigation
// map — the self-healing subsystem reacts only to the latter.
const (
	FailureOutage = "outage"
	FailureDrift  = "drift"
)

// SiteFailure attributes one abandoned maximal object to the site that
// killed it.
type SiteFailure struct {
	Object []string // the minimal cover that was being evaluated
	Host   string   // failing host, when the error chain names one
	Kind   string   // FailureOutage or FailureDrift
	Err    string   // rendered cause
}

// Degraded reports whether any maximal object was lost.
func (d *Degradation) Degraded() bool { return d != nil && len(d.Unavailable) > 0 }

// String renders the report in the style of the EXPLAIN ANALYZE footer.
func (d *Degradation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "degraded: %d object(s) unavailable, stale-served=%d\n",
		len(d.Unavailable), d.StaleServed)
	for _, f := range d.Unavailable {
		host := f.Host
		if host == "" {
			host = "?"
		}
		// Outage lines keep their historical shape; other kinds carry a tag
		// so a reader can tell "site down" from "site redesigned".
		if f.Kind == "" || f.Kind == FailureOutage {
			fmt.Fprintf(&sb, "  {%s}: host=%s: %s\n", strings.Join(f.Object, ", "), host, f.Err)
		} else {
			fmt.Fprintf(&sb, "  {%s}: host=%s [%s]: %s\n", strings.Join(f.Object, ", "), host, f.Kind, f.Err)
		}
	}
	return sb.String()
}

// strictKey flags a context as strict: site outages abort the query
// instead of degrading it.
type strictKey struct{}

// WithStrict marks ctx so that EvalContext fails fast on the first site
// outage (the taxonomized error is returned) instead of evaluating the
// surviving maximal objects.
func WithStrict(ctx context.Context) context.Context {
	return context.WithValue(ctx, strictKey{}, true)
}

func strictFrom(ctx context.Context) bool {
	v, _ := ctx.Value(strictKey{}).(bool)
	return v
}

// Eval plans and evaluates the query against the logical catalog, taking
// the union of the qualifying maximal objects' answers. Objects that fail
// on binding grounds are skipped and reported; any other failure aborts.
func (s *Schema) Eval(q Query, cat algebra.Catalog) (*Result, error) {
	return s.EvalContext(context.Background(), q, cat)
}

// EvalContext is Eval with cancellation and bounded parallelism. The
// maximal objects are independent (each navigates different site
// combinations; the fetch stack is concurrency-safe), so they evaluate
// concurrently under the worker pool the context carries (algebra.WithPool);
// without a pool they evaluate sequentially. Per-object answers are
// written into indexed slots and unioned in plan order, so the result is
// identical tuple for tuple regardless of scheduling. Cancelling ctx
// stops further page fetches and surfaces ctx.Err().
func (s *Schema) EvalContext(ctx context.Context, q Query, cat algebra.Catalog) (*Result, error) {
	return s.EvalStream(ctx, q, cat, nil)
}

// EvalStream is EvalContext with incremental per-object delivery: as
// each maximal object completes, its finished contribution (new unique
// tuples, a degradation failure, or a binding skip) is handed to sink in
// plan order, gated so the stream is byte-identical whatever the worker
// count. The concatenation of delivered tuples equals Result.Relation's
// tuple sequence. Queries with ORDER BY or LIMIT cannot stream
// incrementally — the answer is not final until every object has
// reported — so they emit a single terminal Buffered delivery instead.
// A nil sink degenerates to EvalContext.
func (s *Schema) EvalStream(ctx context.Context, q Query, cat algebra.Catalog, sink ObjectSink) (*Result, error) {
	plan, err := s.Plan(q)
	if err != nil {
		return nil, err
	}
	buffered := len(q.OrderBy) > 0 || q.Limit > 0
	var gate *streamGate
	if sink != nil && !buffered {
		gate = newStreamGate(sink, plan.Objects, strictFrom(ctx))
	}
	// Access-relevance pruning (when the context carries a state): the
	// cardinality early-exit tracks finished objects in plan order and,
	// once the completed prefix holds ≥ LIMIT distinct tuples, skips every
	// object not yet started. It only arms on queries where truncation is
	// order-oblivious (see NewPruneState) — all of which are buffered, so
	// the stream gate never sees a rule-3 decision.
	pst := prune.FromContext(ctx)
	pst.BeginObjects(len(plan.Objects))
	res := &Result{Plan: plan}
	rels := make([]*relation.Relation, len(plan.Objects))
	// One span per maximal object, pre-created in plan order before any
	// object is dispatched, so the trace tree is identical whatever the
	// worker count.
	var sps []*trace.Span
	if trace.FromContext(ctx) != nil {
		sps = make([]*trace.Span, len(plan.Objects))
		for i, obj := range plan.Objects {
			sps[i] = trace.Start(ctx, trace.KindObject,
				"object {"+strings.Join(obj.Relations, ", ")+"}")
		}
	}
	// Every object evaluates even when a sibling fails: binding-failure
	// errors must not abort the other objects' partial answers.
	errs := algebra.ForEach(ctx, len(plan.Objects), false, func(i int) error {
		if pst.LimitArmed() && pst.LimitSatisfied() {
			// Earlier objects already satisfy LIMIT n: the answer is the
			// plan-order union truncated to n, so nothing this object could
			// return survives. Contribute ∅ without evaluating (or fetching)
			// anything. Which objects are skipped depends on completion
			// order — like cache hits, the saving is schedule-dependent —
			// but the contribution is provably empty either way, so the
			// answer stays byte-identical.
			rels[i] = relation.New("", relation.Schema(q.Output))
			pst.Count(prune.ReasonLimit)
			pst.ObjectDone(i, nil)
			if sps != nil {
				sps[i].Set("pruned", 1)
				sps[i].Label("pruned-reason", prune.ReasonLimit)
				sps[i].Set("tuples", 0)
				sps[i].End()
			}
			gate.complete(i, rels[i], nil)
			return nil
		}
		octx := ctx
		if sps != nil {
			octx = trace.ContextWith(ctx, sps[i])
		}
		// Deadline budget: each maximal object gets its own, minted at
		// its own evaluation start. A single query-wide budget would make
		// sequential evaluation burn the later objects' time while the
		// earlier ones run, degrading differently at Workers=1 and
		// Workers=8; a per-object clock keeps exhaustion a property of
		// the object, not of the schedule.
		if b := web.BudgetPolicyFrom(ctx).NewBudget(); b != nil {
			octx = web.ContextWithBudget(octx, b)
		}
		// The paper: "once translated, these queries can be optimized
		// and evaluated by standard query evaluation techniques."
		rel, err := algebra.EvalContext(octx, algebra.Optimize(plan.Objects[i].Expr, cat), cat, nil)
		rels[i] = rel
		if pst.LimitArmed() {
			// Feed the cardinality tracker this object's distinct-tuple
			// keys (nil for a failed object: it contributes nothing, but
			// the plan-order prefix must still advance past it).
			var keys []string
			if err == nil && rel != nil {
				keys = make([]string, rel.Len())
				for k, t := range rel.Tuples() {
					keys[k] = t.Key()
				}
			}
			pst.ObjectDone(i, keys)
		}
		if sps != nil {
			if rel != nil {
				sps[i].Set("tuples", int64(rel.Len()))
			}
			if web.IsBudgetExhausted(err) {
				// Deterministic counter (rendered by EXPLAIN ANALYZE)
				// marking that this object died of budget exhaustion,
				// not of a site fault.
				sps[i].Set("budget-exhausted", 1)
			}
			if web.IsDrift(err) {
				sps[i].Set("drift", 1)
			}
			sps[i].EndErr(err)
		}
		gate.complete(i, rel, err)
		return err
	})
	var firstOutage error
	for i, obj := range plan.Objects {
		rel, err := rels[i], errs[i]
		if err != nil {
			if isBindingFailure(err) {
				res.Skipped = append(res.Skipped,
					fmt.Sprintf("{%s}: %v", strings.Join(obj.Relations, ", "), err))
				continue
			}
			// Graceful degradation: a terminally-failed site (outage
			// class) or a drifted site (answering, but no longer matching
			// its navigation map) abandons only the maximal objects that
			// depend on it; the survivors still answer. Strict mode
			// restores the historical whole-query fail-fast. Cancellation
			// is neither: it aborts regardless, as an unclassified
			// context error.
			if (web.IsOutage(err) || web.IsDrift(err)) && !strictFrom(ctx) {
				if firstOutage == nil {
					firstOutage = err
				}
				if res.Degradation == nil {
					res.Degradation = &Degradation{}
				}
				kind := FailureOutage
				if web.IsDrift(err) {
					kind = FailureDrift
				}
				res.Degradation.Unavailable = append(res.Degradation.Unavailable, SiteFailure{
					Object: obj.Relations,
					Host:   web.FailingHost(err),
					Kind:   kind,
					Err:    err.Error(),
				})
				continue
			}
			return nil, fmt.Errorf("ur: evaluating object {%s}: %w", strings.Join(obj.Relations, ", "), err)
		}
		if res.Relation == nil {
			res.Relation = rel
			continue
		}
		if res.Relation, err = res.Relation.Union(rel); err != nil {
			return nil, err
		}
	}
	if res.Relation == nil {
		if res.Degradation.Degraded() {
			var gone []string
			for _, f := range res.Degradation.Unavailable {
				gone = append(gone, fmt.Sprintf("{%s}: %s", strings.Join(f.Object, ", "), f.Err))
			}
			return nil, fmt.Errorf("ur: every maximal object was unavailable or skipped: %s: %w",
				strings.Join(append(gone, res.Skipped...), "; "), firstOutage)
		}
		return nil, fmt.Errorf("ur: every maximal object was skipped: %s", strings.Join(res.Skipped, "; "))
	}
	if res.Degradation.Degraded() {
		trace.FromContext(ctx).Set("degraded-objects", int64(len(res.Degradation.Unavailable)))
	}
	res.Relation = res.Relation.Distinct()
	if len(q.OrderBy) > 0 {
		res.Relation = res.Relation.SortKeys(q.OrderBy...)
	}
	if q.Limit > 0 {
		res.Relation = res.Relation.Limit(q.Limit)
	}
	if sink != nil && buffered {
		sink(ObjectDelivery{Index: -1, Seq: 1, Buffered: true, Tuples: res.Relation.Tuples()})
	}
	return res, nil
}

func isBindingFailure(err error) bool {
	return errors.Is(err, algebra.ErrBindingUnsatisfied) || errors.Is(err, algebra.ErrNoOrdering)
}
