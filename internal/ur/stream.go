package ur

import (
	"fmt"
	"strings"
	"sync"

	"webbase/internal/relation"
	"webbase/internal/web"
)

// This file is the per-object result delivery surface behind streaming
// query answers. The UR answer is the union of independent maximal
// objects, so partial answers are already well-defined: as soon as an
// object's evaluation finishes, its contribution to the answer is final
// and can be shipped to the caller while the remaining objects are still
// navigating their sites.
//
// Determinism is preserved by a plan-order gate: workers complete
// objects in arbitrary order, but deliveries are released only for the
// contiguous plan-order prefix of completed objects, and a shared
// seen-set drops tuples an earlier object already contributed — exactly
// the first-occurrence discipline of Relation.Union followed by
// Distinct. The concatenation of all delivered tuples is therefore
// byte-identical to Result.Relation's tuple sequence, whatever the
// worker count.

// ObjectDelivery is one maximal object's finished contribution to a
// streaming answer.
type ObjectDelivery struct {
	// Index is the object's plan-order position, or -1 for the single
	// buffered terminal delivery of an ORDER BY / LIMIT query.
	Index int
	// Seq is the delivery's 1-based position in the delivery sequence.
	// Deliveries are released in plan order, so Seq is deterministic for a
	// given query and web state whatever the worker count — it is the
	// resumable-stream offset: a consumer that has processed deliveries
	// through Seq k can re-run the query and skip everything with Seq <= k,
	// and the stitched sequence is identical to an uninterrupted run.
	Seq int
	// Object is the minimal-cover relation set that was evaluated (empty
	// for the buffered terminal delivery).
	Object []string
	// Tuples are the new unique tuples this object contributed — tuples
	// an earlier plan-order object already delivered are omitted, so the
	// concatenation across deliveries is duplicate-free.
	Tuples []relation.Tuple
	// Failure is non-nil when the object degraded out of the answer
	// (site outage or drift under non-strict evaluation).
	Failure *SiteFailure
	// Skipped is non-empty when the object was skipped on binding
	// grounds; it carries the same rendering as Result.Skipped.
	Skipped string
	// Buffered marks the single terminal delivery of a query whose
	// ORDER BY / LIMIT forbids incremental streaming: all tuples arrive
	// at once, post-sort and post-truncation.
	Buffered bool
}

// ObjectSink receives deliveries in plan order. Calls are serialized by
// the gate; the sink must not re-enter evaluation. The gate's
// serialization covers only its own calls: a sink that is also written
// by out-of-band goroutines — the server's keepalive ticker emits
// liveness events between deliveries — must carry its own lock, because
// the gate neither knows about nor orders those writers.
type ObjectSink func(ObjectDelivery)

// streamGate buffers out-of-order object completions and releases them
// to the sink strictly in plan order, deduplicating tuples across
// objects with first-occurrence semantics.
type streamGate struct {
	sink    ObjectSink
	objects []PlanObject
	strict  bool

	mu      sync.Mutex
	next    int                // next plan index eligible for delivery
	ready   map[int]*gateEntry // completed but not yet deliverable
	seen    map[string]bool    // tuple keys already delivered
	aborted bool               // a fatal error stops all further delivery
}

type gateEntry struct {
	rel *relation.Relation
	err error
}

func newStreamGate(sink ObjectSink, objects []PlanObject, strict bool) *streamGate {
	return &streamGate{
		sink:    sink,
		objects: objects,
		strict:  strict,
		ready:   make(map[int]*gateEntry, len(objects)),
		seen:    make(map[string]bool),
	}
}

// complete records object i's outcome and flushes the contiguous
// plan-order prefix of completed objects to the sink. Safe for
// concurrent use by the worker pool; sink calls happen under the gate
// lock, so they are serialized and ordered.
func (g *streamGate) complete(i int, rel *relation.Relation, err error) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ready[i] = &gateEntry{rel: rel, err: err}
	for !g.aborted {
		e, ok := g.ready[g.next]
		if !ok {
			return
		}
		delete(g.ready, g.next)
		g.deliver(g.next, e)
		g.next++
	}
}

// deliver classifies one completed object exactly as EvalContext's
// post-loop does and emits the matching delivery. A fatal error (neither
// a binding failure nor a degradable outage/drift) aborts the stream:
// the query is going to return an error and no further objects are
// observable parts of the answer. Exactly one delivery is emitted per
// plan-order object, so the sequence number is simply i+1 — the
// plan-order index shifted to leave 0 for a stream's preamble.
func (g *streamGate) deliver(i int, e *gateEntry) {
	obj := g.objects[i]
	switch {
	case e.err == nil:
		var fresh []relation.Tuple
		if e.rel != nil {
			for _, t := range e.rel.Tuples() {
				if k := t.Key(); !g.seen[k] {
					g.seen[k] = true
					fresh = append(fresh, t)
				}
			}
		}
		g.sink(ObjectDelivery{Index: i, Seq: i + 1, Object: obj.Relations, Tuples: fresh})
	case isBindingFailure(e.err):
		g.sink(ObjectDelivery{Index: i, Seq: i + 1, Object: obj.Relations,
			Skipped: fmt.Sprintf("{%s}: %v", strings.Join(obj.Relations, ", "), e.err)})
	case (web.IsOutage(e.err) || web.IsDrift(e.err)) && !g.strict:
		kind := FailureOutage
		if web.IsDrift(e.err) {
			kind = FailureDrift
		}
		g.sink(ObjectDelivery{Index: i, Seq: i + 1, Object: obj.Relations, Failure: &SiteFailure{
			Object: obj.Relations,
			Host:   web.FailingHost(e.err),
			Kind:   kind,
			Err:    e.err.Error(),
		}})
	default:
		g.aborted = true
	}
}
