// Package wrapper implements pattern-based data-extraction scripts for
// data pages that do not present their tuples in tables.
//
// Figure 3 of the paper gives every data page an extraction method and
// Section 7 notes the designer supplies the script; table extraction is
// built into navcalc, and this package covers the other common 1990s
// layout: label–value records ("Price: $3,000" lines), one record per
// page or many records separated by a heading element. The related-work
// section points at Ariadne's wrapper research for anything fancier.
package wrapper

import (
	"strings"

	"webbase/internal/htmlkit"
	"webbase/internal/relation"
)

// Field maps a record label onto an output attribute.
type Field struct {
	Label string // text before the colon, case-insensitive ("Price")
	Attr  string // output attribute
	Money bool   // parse the value as a currency amount
}

// Script extracts label–value records from a page.
type Script struct {
	// ItemTag, when non-empty, names the element that starts each record
	// (e.g. "h3": every h3 heading opens a new record). Empty means the
	// whole page is a single record.
	ItemTag string
	Fields  []Field
}

// Attrs returns the output attributes of the script's fields.
func (s *Script) Attrs() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Attr
	}
	return out
}

// Extract runs the script over a parsed page and returns one attribute →
// value map per record that matched at least one field. Records matching
// no field at all are dropped, so navigation can treat an empty result as
// "not a data page".
func (s *Script) Extract(doc *htmlkit.Node) []map[string]relation.Value {
	var records []map[string]relation.Value
	for _, region := range regions(doc, s.ItemTag) {
		rec := make(map[string]relation.Value)
		for _, line := range region {
			label, value, ok := splitLabel(line)
			if !ok {
				continue
			}
			for _, f := range s.Fields {
				if !strings.EqualFold(f.Label, label) {
					continue
				}
				if f.Money {
					rec[f.Attr] = relation.ParseMoney(value)
				} else {
					rec[f.Attr] = relation.Parse(value)
				}
			}
		}
		if len(rec) > 0 {
			records = append(records, rec)
		}
	}
	return records
}

// splitLabel splits "Label: value" at the first colon.
func splitLabel(line string) (label, value string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
}

// blockTags end a text line, the way browsers render them.
var blockTags = map[string]bool{
	"p": true, "br": true, "li": true, "div": true, "tr": true, "td": true,
	"dt": true, "dd": true, "h1": true, "h2": true, "h3": true, "h4": true,
	"hr": true, "table": true, "ul": true, "ol": true,
}

// regions splits the page into per-record line lists. With itemTag empty
// the whole page is one region; otherwise each occurrence of the tag
// starts a new region (text before the first occurrence belongs to a
// preamble region that usually matches nothing).
func regions(doc *htmlkit.Node, itemTag string) [][]string {
	var out [][]string
	cur := []string{}
	var line strings.Builder

	flushLine := func() {
		if t := strings.TrimSpace(line.String()); t != "" {
			cur = append(cur, t)
		}
		line.Reset()
	}
	flushRegion := func() {
		flushLine()
		out = append(out, cur)
		cur = []string{}
	}

	var walk func(n *htmlkit.Node)
	walk = func(n *htmlkit.Node) {
		if n.Type == htmlkit.ElementNode {
			if itemTag != "" && n.Data == itemTag {
				flushRegion()
			}
			if blockTags[n.Data] {
				flushLine()
			}
		}
		if n.Type == htmlkit.TextNode {
			line.WriteString(n.Data)
			line.WriteByte(' ')
		}
		for _, c := range n.Children {
			walk(c)
		}
		if n.Type == htmlkit.ElementNode && blockTags[n.Data] {
			flushLine()
		}
	}
	walk(doc)
	flushRegion()
	return out
}
