package wrapper

import (
	"testing"

	"webbase/internal/htmlkit"
	"webbase/internal/relation"
)

const detailPage = `
<html><body>
<h2>1994 Ford Escort</h2>
<p>Price: $3,250</p>
<p>Mileage: 78,000</p>
<p>Contact: (516) 555-0101</p>
<h2>1996 Ford Escort</h2>
<p>Price: $5,900</p>
<p>Mileage: 41,000</p>
<p>Contact: (516) 555-0102</p>
</body></html>`

func TestExtractMultiRecord(t *testing.T) {
	s := &Script{
		ItemTag: "h2",
		Fields: []Field{
			{Label: "Price", Attr: "Price", Money: true},
			{Label: "Mileage", Attr: "Mileage", Money: true},
			{Label: "Contact", Attr: "Contact"},
		},
	}
	recs := s.Extract(htmlkit.Parse([]byte(detailPage)))
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0]["Price"].IntVal() != 3250 || recs[1]["Price"].IntVal() != 5900 {
		t.Errorf("prices: %v %v", recs[0]["Price"], recs[1]["Price"])
	}
	if recs[0]["Mileage"].IntVal() != 78000 {
		t.Errorf("mileage: %v", recs[0]["Mileage"])
	}
	if recs[1]["Contact"].Str() != "(516) 555-0102" {
		t.Errorf("contact: %v", recs[1]["Contact"])
	}
}

func TestExtractSingleRecordWholePage(t *testing.T) {
	src := `<html><body><dl><dt>Make: jaguar</dt><dd>Year: 1995</dd></dl></body></html>`
	s := &Script{Fields: []Field{
		{Label: "Make", Attr: "Make"},
		{Label: "Year", Attr: "Year"},
	}}
	recs := s.Extract(htmlkit.Parse([]byte(src)))
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0]["Make"].Str() != "jaguar" || recs[0]["Year"].IntVal() != 1995 {
		t.Errorf("record: %v", recs[0])
	}
}

func TestExtractNoMatchesYieldsNil(t *testing.T) {
	s := &Script{Fields: []Field{{Label: "Price", Attr: "Price"}}}
	if recs := s.Extract(htmlkit.Parse([]byte(`<html><body><p>nothing here</p></body></html>`))); recs != nil {
		t.Errorf("recs = %v, want nil", recs)
	}
}

func TestExtractLabelMatchingIsCaseInsensitive(t *testing.T) {
	s := &Script{Fields: []Field{{Label: "price", Attr: "P", Money: true}}}
	recs := s.Extract(htmlkit.Parse([]byte(`<html><body><p>PRICE: $10</p></body></html>`)))
	if len(recs) != 1 || recs[0]["P"].IntVal() != 10 {
		t.Errorf("recs = %v", recs)
	}
}

func TestExtractValueWithColonInside(t *testing.T) {
	// Only the first colon splits; times and URLs survive in the value.
	s := &Script{Fields: []Field{{Label: "Listed", Attr: "L"}}}
	recs := s.Extract(htmlkit.Parse([]byte(`<html><body><p>Listed: 10:30 AM</p></body></html>`)))
	if len(recs) != 1 || recs[0]["L"].Str() != "10:30 AM" {
		t.Errorf("recs = %v", recs)
	}
}

func TestExtractLinesBrokenByBlockTags(t *testing.T) {
	// Two labels in one <p> separated by <br> are distinct lines; inline
	// tags like <b> are not breaks.
	src := `<html><body><p><b>Price</b>: $7 <br> Contact: x</p></body></html>`
	s := &Script{Fields: []Field{
		{Label: "Price", Attr: "P", Money: true},
		{Label: "Contact", Attr: "C"},
	}}
	recs := s.Extract(htmlkit.Parse([]byte(src)))
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0]["P"].IntVal() != 7 || recs[0]["C"].Str() != "x" {
		t.Errorf("record = %v", recs[0])
	}
}

func TestAttrs(t *testing.T) {
	s := &Script{Fields: []Field{{Label: "a", Attr: "A"}, {Label: "b", Attr: "B"}}}
	got := s.Attrs()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("attrs = %v", got)
	}
}

func TestUnlabeledLinesIgnored(t *testing.T) {
	src := `<html><body><p>Welcome!</p><p>Price: $42</p><p>: odd leading colon</p></body></html>`
	s := &Script{Fields: []Field{{Label: "Price", Attr: "P", Money: true}}}
	recs := s.Extract(htmlkit.Parse([]byte(src)))
	if len(recs) != 1 || recs[0]["P"].IntVal() != 42 {
		t.Errorf("recs = %v", recs)
	}
	_ = relation.Null()
}
