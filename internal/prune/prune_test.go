package prune

import (
	"context"
	"reflect"
	"testing"

	"webbase/internal/relation"
)

func eq(attr string, v relation.Value) Cond { return Cond{Attr: attr, Op: EQ, Val: v} }
func cnd(a string, op Op, v relation.Value) Cond {
	return Cond{Attr: a, Op: op, Val: v}
}

func TestStaticallyUnsat(t *testing.T) {
	cases := []struct {
		name  string
		conds []Cond
		unsat bool
	}{
		{"empty", nil, false},
		{"single", []Cond{eq("Make", relation.String("ford"))}, false},
		{"eq-eq-conflict", []Cond{
			eq("Make", relation.String("ford")),
			eq("Make", relation.String("jaguar")),
		}, true},
		{"eq-eq-same", []Cond{
			eq("Make", relation.String("ford")),
			eq("Make", relation.String("Ford")), // Compare is case-insensitive
		}, false},
		{"eq-violates-bound", []Cond{
			eq("Year", relation.Int(1990)),
			cnd("Year", GE, relation.Int(1993)),
		}, true},
		{"eq-satisfies-bound", []Cond{
			eq("Year", relation.Int(1995)),
			cnd("Year", GE, relation.Int(1993)),
		}, false},
		{"empty-range", []Cond{
			cnd("Year", GE, relation.Int(1995)),
			cnd("Year", LE, relation.Int(1992)),
		}, true},
		{"point-range", []Cond{
			cnd("Year", GE, relation.Int(1993)),
			cnd("Year", LE, relation.Int(1993)),
		}, false},
		{"strict-point-range", []Cond{
			cnd("Year", GT, relation.Int(1993)),
			cnd("Year", LE, relation.Int(1993)),
		}, true},
		{"open-range", []Cond{
			cnd("Year", GT, relation.Int(1990)),
			cnd("Year", LT, relation.Int(1995)),
		}, false},
		{"two-lower-bounds", []Cond{
			cnd("Year", GE, relation.Int(1990)),
			cnd("Year", GT, relation.Int(1995)),
		}, false}, // conservatively consistent
		{"ne-vs-eq-conflict", []Cond{
			eq("Make", relation.String("ford")),
			cnd("Make", NE, relation.String("ford")),
		}, true},
		{"different-attrs", []Cond{
			eq("Make", relation.String("ford")),
			eq("Model", relation.String("taurus")),
		}, false},
		{"attr-attr-ignored", []Cond{
			{Attr: "Price", Op: LT, Attr2: "BBPrice"},
			{Attr: "Price", Op: GT, Attr2: "BBPrice"},
		}, false}, // attribute-to-attribute pairs are not analysed
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := NewState(tc.conds, 0).Unsat(); got != tc.unsat {
				t.Errorf("Unsat() = %v, want %v", got, tc.unsat)
			}
		})
	}
}

func TestIrrelevantInputs(t *testing.T) {
	st := NewState([]Cond{
		eq("Make", relation.String("jaguar")),
		cnd("Year", GE, relation.Int(1993)),
		{Attr: "Price", Op: LT, Attr2: "BBPrice"},
	}, 0)

	cases := []struct {
		name   string
		inputs map[string]relation.Value
		want   bool
	}{
		{"no-bindings", map[string]relation.Value{}, false},
		{"consistent", map[string]relation.Value{
			"Make": relation.String("jaguar"), "Year": relation.Int(1995),
		}, false},
		{"case-fold-consistent", map[string]relation.Value{
			"Make": relation.String("Jaguar"),
		}, false},
		{"violates-eq", map[string]relation.Value{
			"Make": relation.String("ford"),
		}, true},
		{"violates-bound", map[string]relation.Value{
			"Year": relation.Int(1990),
		}, true},
		{"unrelated-attr", map[string]relation.Value{
			"Model": relation.String("xj6"),
		}, false},
		{"null-never-violates", map[string]relation.Value{
			"Make": relation.Value{},
		}, false},
		{"attr-attr-one-side", map[string]relation.Value{
			"Price": relation.Int(5000),
		}, false},
		{"attr-attr-violated", map[string]relation.Value{
			"Price": relation.Int(5000), "BBPrice": relation.Int(4000),
		}, true},
		{"attr-attr-satisfied", map[string]relation.Value{
			"Price": relation.Int(5000), "BBPrice": relation.Int(6000),
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := st.IrrelevantInputs(tc.inputs); got != tc.want {
				t.Errorf("IrrelevantInputs(%v) = %v, want %v", tc.inputs, got, tc.want)
			}
		})
	}

	// A statically unsatisfiable clause makes every access irrelevant,
	// even with no bindings at all.
	unsat := NewState([]Cond{
		eq("Make", relation.String("ford")),
		eq("Make", relation.String("jaguar")),
	}, 0)
	if !unsat.IrrelevantInputs(nil) {
		t.Error("statically unsat state should make every access irrelevant")
	}
}

func TestIrrelevantTuple(t *testing.T) {
	st := NewState([]Cond{cnd("Year", GE, relation.Int(1993))}, 0)
	sch := relation.Schema{"Make", "Year"}
	old := relation.Tuple{relation.String("ford"), relation.Int(1990)}
	new_ := relation.Tuple{relation.String("ford"), relation.Int(1995)}
	if !st.IrrelevantTuple(sch, old) {
		t.Error("tuple violating Year >= 1993 should be irrelevant")
	}
	if st.IrrelevantTuple(sch, new_) {
		t.Error("tuple satisfying Year >= 1993 should stay relevant")
	}
	// Attribute absent from the schema: cannot prune.
	if st.IrrelevantTuple(relation.Schema{"Make"}, relation.Tuple{relation.String("ford")}) {
		t.Error("tuple without the conditioned attribute should stay relevant")
	}
}

func TestRestrict(t *testing.T) {
	st := NewState([]Cond{
		eq("Make", relation.String("jaguar")),
		cnd("Year", GE, relation.Int(1993)),
		{Attr: "Price", Op: LT, Attr2: "BBPrice"},
	}, 3)

	// All attributes present: the receiver itself comes back.
	if r := st.Restrict(relation.Schema{"Make", "Year", "Price", "BBPrice"}); r != st {
		t.Error("full-schema Restrict should return the receiver")
	}

	// A view exporting only Make: conditions on Year and Price/BBPrice
	// must not fire inside it.
	r := st.Restrict(relation.Schema{"Make", "Color"})
	if r == st {
		t.Fatal("restriction expected")
	}
	if r.IrrelevantInputs(map[string]relation.Value{"Year": relation.Int(1990)}) {
		t.Error("restricted state must not apply the dropped Year condition")
	}
	if !r.IrrelevantInputs(map[string]relation.Value{"Make": relation.String("ford")}) {
		t.Error("restricted state must keep the Make condition")
	}
	// Attr2 outside the schema drops the condition too.
	r2 := st.Restrict(relation.Schema{"Make", "Price"})
	if r2.IrrelevantInputs(map[string]relation.Value{
		"Price": relation.Int(9), "BBPrice": relation.Int(1),
	}) {
		t.Error("condition with Attr2 outside the schema must be dropped")
	}

	// Restricted states never re-arm the LIMIT early-exit but share the
	// decision counters with the root.
	if r.LimitArmed() {
		t.Error("restricted state must not arm the limit early-exit")
	}
	r.Count(ReasonUnsatWhere)
	if st.Total() != 1 {
		t.Errorf("shared counter: Total() = %d, want 1", st.Total())
	}

	// Static unsatisfiability survives restriction.
	unsat := NewState([]Cond{
		eq("Make", relation.String("ford")),
		eq("Make", relation.String("jaguar")),
	}, 0)
	if !unsat.Restrict(relation.Schema{"Year"}).Unsat() {
		t.Error("static unsat verdict must survive restriction")
	}
}

func TestCountsAndReasons(t *testing.T) {
	st := NewState(nil, 0)
	st.Count(ReasonUnsatWhere)
	st.Count(ReasonUnsatWhere)
	st.Count(ReasonLimit)
	if st.Total() != 3 {
		t.Errorf("Total() = %d, want 3", st.Total())
	}
	want := map[string]int64{ReasonUnsatWhere: 2, ReasonLimit: 1}
	if got := st.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("Counts() = %v, want %v", got, want)
	}
	if got := st.Reasons(); !reflect.DeepEqual(got, []string{ReasonLimit, ReasonUnsatWhere}) {
		t.Errorf("Reasons() = %v (want sorted)", got)
	}
	// Counts returns a copy.
	st.Counts()[ReasonLimit] = 99
	if st.Counts()[ReasonLimit] != 1 {
		t.Error("Counts() must return a copy")
	}
}

func TestLimitTracker(t *testing.T) {
	st := NewState(nil, 2)
	if !st.LimitArmed() {
		t.Fatal("limit should be armed")
	}
	st.BeginObjects(4)
	if st.LimitSatisfied() {
		t.Error("satisfied before any object finished")
	}

	// Object 1 finishing out of order must not count: the plan-order
	// prefix is still open at object 0.
	st.ObjectDone(1, []string{"a", "b"})
	if st.LimitSatisfied() {
		t.Error("out-of-order completion must not satisfy the limit")
	}
	// Object 0 closes the prefix; its tuple plus object 1's two distinct
	// ones reach the limit (duplicate keys collapse).
	st.ObjectDone(0, []string{"a"})
	if !st.LimitSatisfied() {
		t.Error("limit should be satisfied: prefix holds {a, b}")
	}

	// A failed object (nil keys) advances the prefix without contributing.
	st2 := NewState(nil, 1)
	st2.BeginObjects(3)
	st2.ObjectDone(0, nil)
	if st2.LimitSatisfied() {
		t.Error("failed object contributes nothing")
	}
	st2.ObjectDone(1, []string{"x"})
	if !st2.LimitSatisfied() {
		t.Error("prefix {fail, x} holds 1 distinct tuple")
	}

	// Duplicate ObjectDone calls are idempotent.
	st2.ObjectDone(1, []string{"y", "z"})
	st3 := NewState(nil, 0)
	st3.BeginObjects(2) // unarmed: no-op
	st3.ObjectDone(0, []string{"k"})
	if st3.LimitSatisfied() {
		t.Error("unarmed state never satisfies")
	}
}

func TestNilStateInert(t *testing.T) {
	var st *State
	if st.Unsat() || st.LimitArmed() || st.LimitSatisfied() || st.Total() != 0 {
		t.Error("nil state must report nothing prunable")
	}
	if st.IrrelevantInputs(map[string]relation.Value{"A": relation.Int(1)}) {
		t.Error("nil state must never prune")
	}
	if st.IrrelevantTuple(relation.Schema{"A"}, relation.Tuple{relation.Int(1)}) {
		t.Error("nil state must never prune")
	}
	if st.Restrict(relation.Schema{"A"}) != nil {
		t.Error("nil Restrict must stay nil")
	}
	st.Count("x")
	st.BeginObjects(3)
	st.ObjectDone(0, nil)
	if st.Counts() != nil || st.Reasons() != nil {
		t.Error("nil state has no counters")
	}
	// Context round-trip.
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Error("empty context carries no state")
	}
	real := NewState(nil, 0)
	if FromContext(ContextWith(ctx, real)) != real {
		t.Error("context round-trip failed")
	}
}
