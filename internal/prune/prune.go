// Package prune implements runtime access-relevance pruning in the sense
// of Benedikt, Gottlob & Senellart, "Determining Relevance of Accesses at
// Runtime" (PAPERS.md): given the values already bound by the evaluator
// and the query's conjunctive WHERE clause, a pending access (handle
// invocation, dependent-join feed, or whole maximal object) is relevant
// only if it can still contribute answer tuples. Irrelevant accesses are
// skipped before any page is fetched.
//
// The package sits below every evaluation layer — ur threads a State
// through the context, algebra consults it before dependent-join
// invocations, vps consults it before executing a handle — so it must not
// import any of them; it speaks only relation values. Three rules are
// supported:
//
//  1. unsat-where: the inputs an invocation would be made with already
//     violate some conjunct (or the conjunction is statically
//     unsatisfiable), so every tuple the site could return dies in a σ
//     above. The invocation is skipped and replaced by ∅.
//  2. the same check applied to whole dependent-join feed tuples, which
//     short-circuits chains whose upstream bindings are already doomed.
//  3. limit: with LIMIT n and no effective ORDER BY, once the completed
//     plan-order prefix of maximal objects holds ≥ n distinct tuples, no
//     later object can change the answer and is skipped outright.
//
// Rules 1–2 are pure functions of deterministic inputs, so with a fixed
// worker count the pruned spans and counts are reproducible. Rule 3
// depends on completion order (like cache hits): the answer is always
// byte-identical, but how many objects are skipped can vary with the
// schedule.
package prune

import (
	"context"
	"sort"
	"sync"

	"webbase/internal/relation"
)

// Op is a comparison operator. The constants mirror algebra.CmpOp in
// order and meaning; package ur converts between the two (prune cannot
// import algebra, which imports prune).
type Op uint8

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// holds reports whether "a op b" is true, with exactly the Value.Compare
// semantics the σ operators use — pruning must never disagree with the
// selection it is predicting.
func (op Op) holds(a, b relation.Value) bool {
	c := a.Compare(b)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	default:
		return c >= 0
	}
}

// Cond is one conjunct of the query's WHERE clause: attribute-to-constant
// (Attr2 empty) or attribute-to-attribute.
type Cond struct {
	Attr  string
	Op    Op
	Val   relation.Value
	Attr2 string
}

// Pruning reasons, used as span labels and metric dimensions.
const (
	// ReasonUnsatWhere marks an access whose bound inputs (or the query's
	// statically unsatisfiable WHERE clause) guarantee every returned
	// tuple would be dropped by a selection.
	ReasonUnsatWhere = "unsat-where"
	// ReasonLimit marks a maximal object skipped because earlier objects
	// already satisfy LIMIT n.
	ReasonLimit = "limit"
)

// shared is the per-query mutable half of a State: decision counters and
// the plan-order object tracker for the LIMIT early-exit. Restricted
// views of a State (see Restrict) share it, so counts observed by the
// core layer cover every evaluation depth.
type shared struct {
	mu     sync.Mutex
	counts map[string]int64

	// LIMIT early-exit bookkeeping: done/keys record finished objects,
	// prefixLen counts the distinct tuples contributed by the contiguous
	// completed prefix of the plan order. Only that prefix is sound to
	// count — the answer is the plan-order union, so tuples from a later
	// object cannot displace the first n distinct tuples of the prefix.
	done       []bool
	keys       [][]string
	prefixNext int
	seen       map[string]struct{}
	prefixLen  int
}

// State is the compiled relevance state of one query: its conjuncts, the
// statically-derived unsatisfiability verdict, and (when armed) the LIMIT
// for the cardinality early-exit. A nil *State is inert: every method is
// nil-safe and reports "nothing prunable".
type State struct {
	conds []Cond
	unsat bool
	limit int
	sh    *shared
}

// NewState compiles the conjuncts. limit > 0 arms the cardinality
// early-exit (rule 3); the caller is responsible for only arming it when
// sound (no ORDER BY, or every sort key discharged by an equality
// constant — see ur.NewPruneState).
func NewState(conds []Cond, limit int) *State {
	return &State{
		conds: conds,
		unsat: staticallyUnsat(conds),
		limit: limit,
		sh:    &shared{counts: make(map[string]int64)},
	}
}

// staticallyUnsat detects conjunctions no tuple can satisfy — pairs of
// constant conditions on the same attribute that contradict each other,
// like Make = 'ford' AND Make = 'jaguar' or Year ≥ 1993 AND Year < 1990.
func staticallyUnsat(conds []Cond) bool {
	byAttr := make(map[string][]Cond)
	for _, c := range conds {
		if c.Attr2 != "" || c.Val.IsNull() {
			continue
		}
		byAttr[c.Attr] = append(byAttr[c.Attr], c)
	}
	for _, cs := range byAttr {
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if !pairConsistent(cs[i], cs[j]) {
					return true
				}
			}
		}
	}
	return false
}

// pairConsistent reports whether some value can satisfy both constant
// conditions. Equalities are decided by substitution; a lower bound
// (>, ≥) against an upper bound (<, ≤) is consistent only if the bounds
// leave room. Pairs this analysis cannot refute (two lower bounds, ≠
// against anything but =) are conservatively consistent.
func pairConsistent(a, b Cond) bool {
	if a.Op == EQ {
		return b.Op.holds(a.Val, b.Val)
	}
	if b.Op == EQ {
		return a.Op.holds(b.Val, a.Val)
	}
	lower := func(op Op) bool { return op == GT || op == GE }
	upper := func(op Op) bool { return op == LT || op == LE }
	var lo, hi Cond
	switch {
	case lower(a.Op) && upper(b.Op):
		lo, hi = a, b
	case upper(a.Op) && lower(b.Op):
		lo, hi = b, a
	default:
		return true
	}
	if lo.Op == GT || hi.Op == LT {
		return lo.Val.Compare(hi.Val) < 0
	}
	return lo.Val.Compare(hi.Val) <= 0
}

// Unsat reports whether the WHERE clause is statically unsatisfiable.
func (st *State) Unsat() bool { return st != nil && st.unsat }

// Irrelevant reports whether an access whose bound attribute values are
// exposed by get can no longer contribute answer tuples: some conjunct is
// already violated by non-null bound values (both sides, for
// attribute-to-attribute conditions), or the clause is statically
// unsatisfiable. Missing and null values never violate — an unbound
// attribute may still take any value.
func (st *State) Irrelevant(get func(attr string) (relation.Value, bool)) bool {
	if st == nil {
		return false
	}
	if st.unsat {
		return true
	}
	for _, c := range st.conds {
		lhs, ok := get(c.Attr)
		if !ok || lhs.IsNull() {
			continue
		}
		rhs := c.Val
		if c.Attr2 != "" {
			r, ok := get(c.Attr2)
			if !ok || r.IsNull() {
				continue
			}
			rhs = r
		}
		if !c.Op.holds(lhs, rhs) {
			return true
		}
	}
	return false
}

// IrrelevantInputs is Irrelevant over a populate input map — the form the
// VPS layer holds just before invoking a handle.
func (st *State) IrrelevantInputs(inputs map[string]relation.Value) bool {
	if st == nil {
		return false
	}
	return st.Irrelevant(func(a string) (relation.Value, bool) {
		v, ok := inputs[a]
		return v, ok
	})
}

// IrrelevantTuple is Irrelevant over one tuple of a relation — the form
// the dependent-join evaluator holds when deciding whether a feed tuple
// can still extend to an answer.
func (st *State) IrrelevantTuple(sch relation.Schema, t relation.Tuple) bool {
	if st == nil {
		return false
	}
	return st.Irrelevant(func(a string) (relation.Value, bool) {
		i := sch.IndexOf(a)
		if i < 0 {
			return relation.Value{}, false
		}
		return t[i], true
	})
}

// Restrict returns a view of the state containing only the conditions
// whose attributes all lie within sch, sharing the counters and the
// object tracker. The logical layer installs the restricted state before
// evaluating a view definition: an attribute a view uses internally but
// drops from its output is not the query's attribute of the same name,
// so conditions on it must not fire inside (the static-unsatisfiability
// verdict survives restriction — it empties the whole object regardless
// of which relation is being populated). Returns the receiver unchanged
// when every condition survives.
func (st *State) Restrict(sch relation.Schema) *State {
	if st == nil {
		return nil
	}
	keep := 0
	for _, c := range st.conds {
		if sch.Has(c.Attr) && (c.Attr2 == "" || sch.Has(c.Attr2)) {
			keep++
		}
	}
	if keep == len(st.conds) {
		return st
	}
	conds := make([]Cond, 0, keep)
	for _, c := range st.conds {
		if sch.Has(c.Attr) && (c.Attr2 == "" || sch.Has(c.Attr2)) {
			conds = append(conds, c)
		}
	}
	return &State{conds: conds, unsat: st.unsat, limit: 0, sh: st.sh}
}

// Count records one pruning decision under the given reason.
func (st *State) Count(reason string) {
	if st == nil {
		return
	}
	st.sh.mu.Lock()
	st.sh.counts[reason]++
	st.sh.mu.Unlock()
}

// Counts returns a copy of the per-reason decision counters.
func (st *State) Counts() map[string]int64 {
	if st == nil {
		return nil
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	out := make(map[string]int64, len(st.sh.counts))
	for r, n := range st.sh.counts {
		out[r] = n
	}
	return out
}

// Total returns the total number of pruning decisions.
func (st *State) Total() int64 {
	if st == nil {
		return 0
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	var n int64
	for _, c := range st.sh.counts {
		n += c
	}
	return n
}

// Reasons returns the recorded reasons sorted, for deterministic
// rendering.
func (st *State) Reasons() []string {
	if st == nil {
		return nil
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	out := make([]string, 0, len(st.sh.counts))
	for r := range st.sh.counts {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// LimitArmed reports whether the cardinality early-exit is active.
func (st *State) LimitArmed() bool { return st != nil && st.limit > 0 }

// BeginObjects sizes the plan-order object tracker; the UR layer calls it
// once planning has fixed the object count.
func (st *State) BeginObjects(n int) {
	if st == nil || st.limit <= 0 {
		return
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	st.sh.done = make([]bool, n)
	st.sh.keys = make([][]string, n)
	st.sh.prefixNext = 0
	st.sh.seen = make(map[string]struct{})
	st.sh.prefixLen = 0
}

// ObjectDone records that plan-order object i finished with the given
// distinct-tuple keys (nil for a failed, skipped or pruned object — it
// contributes nothing, but the prefix must still advance past it).
func (st *State) ObjectDone(i int, keys []string) {
	if st == nil || st.limit <= 0 {
		return
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	if st.sh.done == nil || i >= len(st.sh.done) || st.sh.done[i] {
		return
	}
	st.sh.done[i] = true
	st.sh.keys[i] = keys
	for st.sh.prefixNext < len(st.sh.done) && st.sh.done[st.sh.prefixNext] {
		for _, k := range st.sh.keys[st.sh.prefixNext] {
			if _, dup := st.sh.seen[k]; !dup {
				st.sh.seen[k] = struct{}{}
				st.sh.prefixLen++
			}
		}
		st.sh.keys[st.sh.prefixNext] = nil
		st.sh.prefixNext++
	}
}

// LimitSatisfied reports whether the completed contiguous plan-order
// prefix already holds at least LIMIT distinct tuples — the condition
// under which every not-yet-started object is irrelevant.
func (st *State) LimitSatisfied() bool {
	if st == nil || st.limit <= 0 {
		return false
	}
	st.sh.mu.Lock()
	defer st.sh.mu.Unlock()
	return st.sh.prefixLen >= st.limit
}

type ctxKey struct{}

// ContextWith attaches the state; the evaluation layers below pick it up.
func ContextWith(ctx context.Context, st *State) context.Context {
	return context.WithValue(ctx, ctxKey{}, st)
}

// FromContext returns the attached state, or nil (inert).
func FromContext(ctx context.Context) *State {
	st, _ := ctx.Value(ctxKey{}).(*State)
	return st
}
