package trace

import (
	"encoding/json"
	"time"
)

// SpanJSON is the export form of one span. Start/End are nanosecond
// offsets from the trace root's start, so exports under an injected fake
// clock are fully reproducible.
type SpanJSON struct {
	ID       string            `json:"id"`
	Kind     string            `json:"kind"`
	Name     string            `json:"name"`
	StartNS  int64             `json:"start_ns"`
	EndNS    int64             `json:"end_ns"`
	Err      string            `json:"error,omitempty"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Labels   map[string]string `json:"labels,omitempty"`
	Children []*SpanJSON       `json:"children,omitempty"`
}

// JSON exports the full span tree — including the schedule-dependent
// labels the structural renderings omit — as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Export(), "", "  ")
}

// Export converts the span tree to its JSON form.
func (t *Trace) Export() *SpanJSON {
	epoch := t.Root.startTime()
	var conv func(s *Span) *SpanJSON
	conv = func(s *Span) *SpanJSON {
		s.mu.Lock()
		j := &SpanJSON{
			ID:      s.id,
			Kind:    s.kind.String(),
			Name:    s.name,
			StartNS: s.start.Sub(epoch).Nanoseconds(),
			Err:     s.err,
		}
		if !s.end.IsZero() {
			j.EndNS = s.end.Sub(epoch).Nanoseconds()
		}
		if len(s.counters) > 0 {
			j.Counters = make(map[string]int64, len(s.counters))
			for k, v := range s.counters {
				j.Counters[k] = v
			}
		}
		if len(s.labels) > 0 {
			j.Labels = make(map[string]string, len(s.labels))
			for k, v := range s.labels {
				j.Labels[k] = v
			}
		}
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		for _, c := range children {
			j.Children = append(j.Children, conv(c))
		}
		return j
	}
	return conv(t.Root)
}

func (s *Span) startTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}
