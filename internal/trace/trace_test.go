package trace

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock returns a deterministic, concurrency-safe clock advancing 1ms
// per call.
func fakeClock() func() time.Time {
	var n atomic.Int64
	base := time.Unix(0, 0)
	return func() time.Time {
		return base.Add(time.Duration(n.Add(1)) * time.Millisecond)
	}
}

func TestSpanTreeIDsArePlanOrdered(t *testing.T) {
	tr := New("q", fakeClock())
	a := tr.Root.Start(KindObject, "object A")
	b := tr.Root.Start(KindObject, "object B")
	a1 := a.Start(KindOp, "scan r")
	if tr.Root.ID() != "0" || a.ID() != "0.0" || b.ID() != "0.1" || a1.ID() != "0.0.0" {
		t.Fatalf("ids = %s %s %s %s", tr.Root.ID(), a.ID(), b.ID(), a1.ID())
	}
	kids := tr.Root.Children()
	if len(kids) != 2 || kids[0] != a || kids[1] != b {
		t.Fatal("children must come back in creation order")
	}
}

func TestNilSpanIsANoOp(t *testing.T) {
	var s *Span
	if c := s.Start(KindOp, "x"); c != nil {
		t.Fatal("nil.Start must return nil")
	}
	s.Set("tuples", 1)
	s.Add("tuples", 1)
	s.Label("outcome", "cache")
	s.End()
	s.EndErr(errors.New("boom"))
	if s.Counter("tuples") != 0 || s.LabelValue("outcome") != "" || s.Err() != "" || s.Duration() != 0 {
		t.Fatal("nil span must read as zero")
	}
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("ContextWith(nil) must not attach a span")
	}
	if Start(ctx, KindOp, "x") != nil {
		t.Fatal("Start without a context span must return nil")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := New("q", fakeClock())
	ctx := ContextWith(context.Background(), tr.Root)
	child := Start(ctx, KindObject, "object A")
	if child == nil || child.ID() != "0.0" {
		t.Fatalf("child = %v", child)
	}
	if FromContext(ctx) != tr.Root {
		t.Fatal("FromContext must return the attached span")
	}
}

func TestRenderAggregatesSiblingsByKindAndName(t *testing.T) {
	tr := New("q", fakeClock())
	join := tr.Root.Start(KindOp, "⋈")
	for i := 0; i < 3; i++ {
		inv := join.Start(KindInvoke, "invoke {Make}")
		sc := inv.Start(KindOp, "bluebook")
		sc.Set("tuples", int64(i+1))
		sc.End()
		inv.End()
	}
	join.End()
	tr.Root.End()
	out := tr.Render(RenderOptions{})
	for _, want := range []string{
		"q invocations=1",
		"  ⋈ invocations=1",
		"    invoke {Make} invocations=3",
		"      bluebook invocations=3 tuples=6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimingsAndStrip(t *testing.T) {
	tr := New("q", fakeClock())
	tr.Root.End()
	with := tr.Render(RenderOptions{Timings: true})
	if !strings.Contains(with, " time=") {
		t.Fatalf("expected time= field:\n%s", with)
	}
	if stripped := StripTimings(with); strings.Contains(stripped, "time=") {
		t.Fatalf("StripTimings left timings:\n%s", stripped)
	} else if stripped != tr.Render(RenderOptions{}) {
		t.Fatalf("stripped rendering must equal the timing-free rendering:\n%q\n%q",
			stripped, tr.Render(RenderOptions{}))
	}
}

func TestStructureOmitsLabelsKeepsCountersAndErrors(t *testing.T) {
	tr := New("q", fakeClock())
	f := tr.Root.Start(KindFetch, "http://h/x")
	f.Set("bytes", 12)
	f.Label("outcome", "cache")
	f.EndErr(errors.New("boom"))
	tr.Root.End()
	s := tr.Structure()
	if !strings.Contains(s, "0.0 fetch http://h/x bytes=12 error=\"boom\"") {
		t.Fatalf("structure line wrong:\n%s", s)
	}
	if strings.Contains(s, "cache") {
		t.Fatalf("structure must omit schedule-dependent labels:\n%s", s)
	}
}

func TestJSONExport(t *testing.T) {
	tr := New("q", fakeClock())
	f := tr.Root.Start(KindFetch, "http://h/x")
	f.Set("bytes", 7)
	f.Label("outcome", "network")
	f.End()
	tr.Root.End()
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var root SpanJSON
	if err := json.Unmarshal(raw, &root); err != nil {
		t.Fatal(err)
	}
	if root.ID != "0" || root.Kind != "query" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	c := root.Children[0]
	if c.Labels["outcome"] != "network" || c.Counters["bytes"] != 7 {
		t.Fatalf("child = %+v", c)
	}
	if c.StartNS <= 0 || c.EndNS <= c.StartNS {
		t.Fatalf("offsets not monotone: %d %d", c.StartNS, c.EndNS)
	}
}

func TestWalkAndSpansFilter(t *testing.T) {
	tr := New("q", fakeClock())
	o := tr.Root.Start(KindObject, "o")
	o.Start(KindFetch, "f1")
	o.Start(KindFetch, "f2")
	if got := len(tr.Spans(KindFetch)); got != 2 {
		t.Fatalf("fetch spans = %d", got)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("all spans = %d", got)
	}
}

// TestConcurrentSpanUse exercises the tree under the race detector: the
// deterministic-ID discipline (pre-create in order, then dispatch) with
// concurrent counter/label writes and subtree growth.
func TestConcurrentSpanUse(t *testing.T) {
	tr := New("q", fakeClock())
	const n = 16
	branches := make([]*Span, n)
	for i := range branches {
		branches[i] = tr.Root.Start(KindObject, "object")
	}
	var wg sync.WaitGroup
	for i, b := range branches {
		wg.Add(1)
		go func(i int, b *Span) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := b.Start(KindFetch, "fetch")
				c.Add("bytes", 1)
				c.Label("outcome", "network")
				c.End()
			}
			b.Set("tuples", int64(i))
			b.End()
		}(i, b)
	}
	wg.Wait()
	tr.Root.End()
	if got := len(tr.Spans(KindFetch)); got != n*50 {
		t.Fatalf("fetch spans = %d, want %d", got, n*50)
	}
	for i, b := range tr.Root.Children() {
		if b != branches[i] {
			t.Fatal("pre-created branch order must be preserved")
		}
	}
}
