package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight, dependency-free metrics registry: named
// counters, gauges and histograms with a consistent snapshot API. One
// registry lives on each Webbase and aggregates across queries; the
// per-query trace tree answers "what did this query do", the registry
// answers "what has this webbase been doing".
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls may omit the bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the gauge's value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets and tracks sum/count,
// Prometheus-style but in-process only.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // bucket upper bounds, ascending; one overflow bucket beyond
	counts []int64   // len(bounds)+1
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		h.mu.Unlock()
	}
	return s
}

// String renders the snapshot as sorted name=value lines; histograms print
// count, sum and the per-bucket cumulative counts.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "gauge %s %d\n", name, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "histogram %s count=%d sum=%g", name, h.Count, h.Sum)
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			bound := "+Inf"
			if i < len(h.Bounds) {
				bound = formatBound(h.Bounds[i])
			}
			fmt.Fprintf(&sb, " le(%s)=%d", bound, cum)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MarshalJSON exports the snapshot (used by the CLI's machine-readable
// path).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

func formatBound(b float64) string {
	if b == math.Trunc(b) {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
