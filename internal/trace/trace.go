// Package trace is the webbase's execution-tracing subsystem: a
// concurrency-safe span tree mirroring the layered evaluation of one query
// (query → maximal object → algebra operator → handle invocation → page
// fetch), threaded through every layer via context.Context.
//
// Two properties make the layer testable and useful for optimization work
// (Benedikt & Gottlob: knowing which accesses actually mattered is the key
// lever for optimizing dynamic-web query plans):
//
//   - Determinism. Span IDs are assigned in plan order — every parallel
//     fan-out pre-creates its children in index order before dispatching
//     work — so the trace *structure* is byte-identical regardless of how
//     many workers evaluate the query. Schedule-dependent facts (which
//     fetch hit the cache, which was deduplicated onto an in-flight
//     twin) are recorded as labels, kept out of the structural rendering.
//   - Injectable time. Spans read a clock the Trace owns; tests inject a
//     fake clock and get byte-identical timings too.
//
// The package also hosts a dependency-free metrics registry (metrics.go)
// that aggregates counters, gauges and histograms across queries.
package trace

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Kind classifies a span by the layer that produced it.
type Kind uint8

// Span kinds, one per layer of the paper's architecture plus the
// dependent-join invocation level in between.
const (
	KindQuery  Kind = iota // one UR query (the root)
	KindObject             // one maximal object of the plan
	KindOp                 // one algebra operator evaluation
	KindInvoke             // one dependent-join handle invocation (one binding combination)
	KindHandle             // one VPS handle execution
	KindFetch              // one page load attempted by navigation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindObject:
		return "object"
	case KindOp:
		return "op"
	case KindInvoke:
		return "invoke"
	case KindHandle:
		return "handle"
	case KindFetch:
		return "fetch"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Trace is one query's span tree. The zero value is not usable; call New.
type Trace struct {
	// Root is the query span every other span descends from.
	Root  *Span
	clock func() time.Time
}

// New starts a trace whose root span has the given name. clock supplies
// span timestamps; nil means time.Now. Injecting a fake clock makes span
// timings — and therefore full renderings — reproducible in tests.
func New(rootName string, clock func() time.Time) *Trace {
	if clock == nil {
		clock = time.Now
	}
	t := &Trace{clock: clock}
	t.Root = &Span{trace: t, kind: KindQuery, name: rootName, id: "0", start: clock()}
	return t
}

// Span is one node of the trace tree. All methods are safe for concurrent
// use and safe on a nil receiver, so instrumentation sites need no
// "tracing enabled?" branches: without a span in the context every call is
// a no-op.
type Span struct {
	trace *Trace
	kind  Kind
	name  string
	id    string // plan-order path ID: "0", "0.1", "0.1.2", ...

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	err      string
	counters map[string]int64  // deterministic facts: tuples, bytes, fetches, ...
	labels   map[string]string // schedule-dependent facts: outcome, attempts, ...
	children []*Span
}

// Start creates a child span. It is the one tree-growing operation;
// deterministic IDs follow from calling it either sequentially or — at
// parallel fan-outs — for all children in index order before dispatch.
// On a nil receiver it returns nil.
func (s *Span) Start(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, kind: kind, name: name, start: s.trace.clock()}
	s.mu.Lock()
	c.id = fmt.Sprintf("%s.%d", s.id, len(s.children))
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's end time.
func (s *Span) End() { s.EndErr(nil) }

// EndErr stamps the end time and records err (nil is a clean end).
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	now := s.trace.clock()
	s.mu.Lock()
	s.end = now
	if err != nil {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// Set records a deterministic counter value on the span. Counters appear
// in structural renderings, so only schedule-independent quantities
// (tuple counts, page loads, bytes) belong here; use Label for the rest.
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[key] = v
	s.mu.Unlock()
}

// Add increments a deterministic counter.
func (s *Span) Add(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[key] += v
	s.mu.Unlock()
}

// Label records a schedule-dependent annotation (e.g. whether a fetch was
// served by the cache, the network, or an in-flight twin). Labels are
// exported to JSON but excluded from structural renderings, which is what
// keeps those byte-identical across worker counts.
func (s *Span) Label(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string)
	}
	s.labels[key] = val
	s.mu.Unlock()
}

// Kind returns the span's kind.
func (s *Span) Kind() Kind {
	if s == nil {
		return KindQuery
	}
	return s.kind
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's plan-order path ID.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Err returns the recorded error message ("" for a clean span).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Counter returns a counter's value (0 when unset).
func (s *Span) Counter(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// LabelValue returns a label's value ("" when unset).
func (s *Span) LabelValue(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.labels[key]
}

// Duration returns end − start, or 0 for an unfinished span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() || s.end.Before(s.start) {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns a snapshot of the child spans in creation (= plan)
// order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant in depth-first plan order.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Spans returns every span of the given kinds in depth-first plan order
// (all spans when no kind is given).
func (t *Trace) Spans(kinds ...Kind) []*Span {
	var out []*Span
	t.Root.Walk(func(s *Span) {
		if len(kinds) == 0 {
			out = append(out, s)
			return
		}
		for _, k := range kinds {
			if s.kind == k {
				out = append(out, s)
				return
			}
		}
	})
	return out
}

type ctxKey struct{}

// ContextWith returns a context carrying the span; downstream layers pick
// it up with FromContext/Start. A nil span leaves ctx unchanged, so
// untraced evaluation pays no context allocation.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start creates a child of the context's span, or returns nil (a no-op
// span) when the context carries none. This is the instrumentation
// entry point every layer uses.
func Start(ctx context.Context, kind Kind, name string) *Span {
	return FromContext(ctx).Start(kind, name)
}
