package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(2)
	r.Counter("queries_total").Add(3)
	if got := r.Counter("queries_total").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	g := r.Gauge("peak")
	g.Set(7)
	g.SetMax(3) // lower: no-op
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pages", 1, 5, 10)
	for _, v := range []float64{0, 1, 2, 7, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["pages"]
	if s.Count != 5 || s.Sum != 110 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	// Buckets: ≤1: {0,1}; (1,5]: {2}; (5,10]: {7}; overflow: {100}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestSnapshotStringSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(1)
	r.Counter("a_total").Add(2)
	r.Gauge("g").Set(3)
	r.Histogram("h", 10).Observe(4)
	out := r.Snapshot().String()
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{"counter a_total 2", "gauge g 3", "histogram h count=1 sum=4 le(10)=1 le(+Inf)=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	if out != r.Snapshot().String() {
		t.Fatal("snapshot rendering must be stable")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h", 50, 100).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 1600 {
		t.Fatalf("histogram count = %d", got)
	}
}
