package trace

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"
)

// RenderOptions controls Render.
type RenderOptions struct {
	// Timings includes per-line wall time (time=…). Wall time is
	// schedule-dependent; StripTimings removes exactly these fields, which
	// is how the determinism tests compare renderings "minus timings".
	Timings bool
}

// Render prints the trace as an aggregated plan tree, Postgres
// EXPLAIN ANALYZE-style: sibling spans with the same kind and name — the
// per-combination invocations of a dependent join, the repeated scans they
// contain, the page loads of a pagination loop — merge into one line with
// invocations=N and summed counters. Aggregation is a pure function of the
// tree, and the tree is built in plan order, so the rendering (minus
// timings) is byte-identical no matter how many workers evaluated the
// query.
func (t *Trace) Render(opts RenderOptions) string {
	var sb strings.Builder
	renderAgg(&sb, aggregate([]*Span{t.Root}), 0, opts)
	return sb.String()
}

// Structure prints the raw (non-aggregated) span tree — one line per span
// with its plan-order ID, kind, name, error and deterministic counters,
// and nothing schedule-dependent. Two traces of the same query have equal
// Structure regardless of Config.Workers; the determinism suite asserts
// exactly that.
func (t *Trace) Structure() string {
	var sb strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&sb, "%s%s %s %s", strings.Repeat("  ", depth), s.ID(), s.Kind(), s.Name())
		writeCounters(&sb, s.countersSnapshot())
		if e := s.Err(); e != "" {
			fmt.Fprintf(&sb, " error=%q", e)
		}
		sb.WriteByte('\n')
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

var timingRE = regexp.MustCompile(` time=[^ \n]+`)

// StripTimings removes the time=… fields Render(Timings: true) adds,
// leaving only the schedule-independent text.
func StripTimings(s string) string { return timingRE.ReplaceAllString(s, "") }

// agg is one line of the aggregated rendering: a group of sibling spans
// sharing kind and name, with counters summed and children merged
// recursively.
type agg struct {
	kind     Kind
	name     string
	count    int
	errs     int
	dur      int64 // summed durations, ns
	counters map[string]int64
	children []*agg
}

// aggregate groups the given sibling spans' children by (kind, name) in
// first-occurrence order — which is plan order, because spans are created
// in plan order.
func aggregate(group []*Span) *agg {
	a := &agg{kind: group[0].Kind(), name: group[0].Name(), count: len(group), counters: make(map[string]int64)}
	var childGroups [][]*Span
	index := make(map[string]int)
	for _, s := range group {
		if s.Err() != "" {
			a.errs++
		}
		a.dur += int64(s.Duration())
		for k, v := range s.countersSnapshot() {
			a.counters[k] += v
		}
		for _, c := range s.Children() {
			key := c.Kind().String() + "\x00" + c.Name()
			i, ok := index[key]
			if !ok {
				i = len(childGroups)
				index[key] = i
				childGroups = append(childGroups, nil)
			}
			childGroups[i] = append(childGroups[i], c)
		}
	}
	for _, cg := range childGroups {
		a.children = append(a.children, aggregate(cg))
	}
	return a
}

func renderAgg(sb *strings.Builder, a *agg, depth int, opts RenderOptions) {
	fmt.Fprintf(sb, "%s%s invocations=%d", strings.Repeat("  ", depth), a.name, a.count)
	writeCounters(sb, a.counters)
	if a.errs > 0 {
		fmt.Fprintf(sb, " errors=%d", a.errs)
	}
	if opts.Timings {
		fmt.Fprintf(sb, " time=%v", durRound(a.dur))
	}
	sb.WriteByte('\n')
	for _, c := range a.children {
		renderAgg(sb, c, depth+1, opts)
	}
}

// durRound trims summed durations to microseconds: enough resolution for a
// human, short enough to keep lines readable.
func durRound(ns int64) time.Duration { return time.Duration(ns).Round(time.Microsecond) }

func writeCounters(sb *strings.Builder, counters map[string]int64) {
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, " %s=%d", k, counters[k])
	}
}

func (s *Span) countersSnapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}
