// Shopper is a comparison-shopping agent: given a make and model, it
// sweeps every ad-carrying site in parallel (Section 7: "parallelization
// of query evaluation is crucial"), prices each ad against Kelly's blue
// book, and ranks the deals — then repeats the sweep to show the page
// cache collapsing the cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"webbase"
	"webbase/internal/relation"
)

func main() {
	make_ := flag.String("make", "jaguar", "car make to shop for")
	model := flag.String("model", "xj6", "car model to shop for")
	flag.Parse()

	world := webbase.NewSimulatedWorld()
	latency := webbase.DefaultLatency
	latency.Sleep = true // real sleeping: the parallel speedup is wall-clock
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server, Latency: latency, Workers: 10})
	if err != nil {
		log.Fatal(err)
	}

	adSites := []string{"newsday", "nyTimes", "newYorkDaily", "carPoint", "autoWeb", "wwWheels", "yahooCars"}
	inputs := map[string]relation.Value{
		"Make":  webbase.String(*make_),
		"Model": webbase.String(*model),
	}

	fmt.Printf("Shopping for a used %s %s across %d sites...\n\n", *make_, *model, len(adSites))
	start := time.Now()
	results := sys.PopulateAll(adSites, inputs)
	parallel := time.Since(start)

	total := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("  %-14s unavailable: %v\n", r.Relation, r.Err)
			continue
		}
		fmt.Printf("  %-14s %3d ads\n", r.Relation, r.Rel.Len())
		total += r.Rel.Len()
	}
	fmt.Printf("  %d ads in %v (parallel)\n\n", total, parallel.Round(time.Millisecond))

	// Price the best candidates against the blue book.
	book, _, err := sys.Registry.Populate(sys.Fetcher(), "kellys", map[string]relation.Value{
		"Make": webbase.String(*make_), "Model": webbase.String(*model),
		"Condition": webbase.String("good"),
	})
	if err != nil {
		log.Fatal(err)
	}
	bbByYear := make(map[int64]int64)
	for _, t := range book.Tuples() {
		y, _ := book.Get(t, "Year")
		bb, _ := book.Get(t, "BBPrice")
		bbByYear[y.IntVal()] = bb.IntVal()
	}

	fmt.Println("Best deals (price vs blue book, good condition assumed):")
	type deal struct {
		site            string
		year, price, bb int64
		contact         string
	}
	var deals []deal
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		for _, t := range r.Rel.Tuples() {
			y, _ := r.Rel.Get(t, "Year")
			p, _ := r.Rel.Get(t, "Price")
			c, _ := r.Rel.Get(t, "Contact")
			bb, ok := bbByYear[y.IntVal()]
			if !ok || p.IntVal() >= bb {
				continue
			}
			deals = append(deals, deal{site: r.Relation, year: y.IntVal(), price: p.IntVal(), bb: bb, contact: c.Str()})
		}
	}
	for i := 1; i < len(deals); i++ {
		for j := i; j > 0 && deals[j].bb-deals[j].price > deals[j-1].bb-deals[j-1].price; j-- {
			deals[j], deals[j-1] = deals[j-1], deals[j]
		}
	}
	top := len(deals)
	if top > 8 {
		top = 8
	}
	for _, d := range deals[:top] {
		fmt.Printf("  %4d  $%-6d (book $%-6d, save $%-5d) via %-13s %s\n",
			d.year, d.price, d.bb, d.bb-d.price, d.site, d.contact)
	}
	if len(deals) == 0 {
		fmt.Println("  no below-book deals today")
	}

	// Repeat the sweep: the cache answers everything.
	start = time.Now()
	sys.PopulateAll(adSites, inputs)
	cached := time.Since(start)
	fmt.Printf("\nRepeat sweep from cache: %v (first run %v)\n",
		cached.Round(time.Millisecond), parallel.Round(time.Millisecond))
}
