// Usedcars runs the paper's running example (Sections 1, 2 and 6): "make a
// list of used Jaguars advertised in New York City area sites such that
// each car is a 1993 or later model, has good safety ratings, and its
// selling price is less than its Blue Book value."
//
// The program shows each stage the query passes through: the universal
// relation query the user writes, the plan (maximal objects and their
// minimal covers), and the answers with what their retrieval cost.
package main

import (
	"fmt"
	"log"

	"webbase"
	"webbase/internal/algebra"
	"webbase/internal/ur"
)

func main() {
	world := webbase.NewSimulatedWorld()
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}

	// The query, built programmatically this time (QueryString would do
	// the same): Price < BBPrice is an attribute-to-attribute comparison,
	// the thing canned form interfaces cannot express.
	q := webbase.Query{
		Output: []string{"Make", "Model", "Year", "Price", "BBPrice", "Contact"},
		Conditions: []algebra.Condition{
			{Attr: "Make", Op: algebra.EQ, Val: webbase.String("jaguar")},
			{Attr: "Year", Op: algebra.GE, Val: webbase.Int(1993)},
			{Attr: "Safety", Op: algebra.EQ, Val: webbase.String("good")},
			{Attr: "Condition", Op: algebra.EQ, Val: webbase.String("good")},
			{Attr: "Price", Op: algebra.LT, Attr2: "BBPrice"},
		},
	}
	fmt.Println("Query:")
	fmt.Println("  " + q.String())

	plan, err := sys.UR.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPlan (one branch per maximal object):")
	for _, o := range plan.Objects {
		fmt.Printf("  join(%v) from object %v\n", o.Relations, o.Object)
	}

	res, stats, err := sys.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBargain jaguars, best deals first:")
	printDeals(res)
	fmt.Printf("\n%d answers; %s\n", res.Relation.Len(), stats)
	if len(res.Skipped) > 0 {
		fmt.Println("skipped objects:", res.Skipped)
	}
}

// printDeals sorts by discount (BBPrice − Price) descending and prints the
// top rows.
func printDeals(res *ur.Result) {
	rel := res.Relation
	type deal struct {
		row      webbase.Tuple
		discount int64
	}
	var deals []deal
	for _, t := range rel.Tuples() {
		p, _ := rel.Get(t, "Price")
		bb, _ := rel.Get(t, "BBPrice")
		deals = append(deals, deal{row: t, discount: bb.IntVal() - p.IntVal()})
	}
	for i := 1; i < len(deals); i++ {
		for j := i; j > 0 && deals[j].discount > deals[j-1].discount; j-- {
			deals[j], deals[j-1] = deals[j-1], deals[j]
		}
	}
	n := len(deals)
	if n > 10 {
		n = 10
	}
	for _, d := range deals[:n] {
		model, _ := rel.Get(d.row, "Model")
		year, _ := rel.Get(d.row, "Year")
		price, _ := rel.Get(d.row, "Price")
		bb, _ := rel.Get(d.row, "BBPrice")
		contact, _ := rel.Get(d.row, "Contact")
		fmt.Printf("  %-12s %v  $%-6v (blue book $%v, save $%d)  %v\n",
			model, year, price, bb, d.discount, contact)
	}
}
