// Apartments runs the webbase over a second application domain —
// apartment hunting — showing that the layered architecture is not tied
// to the paper's used-car scenario: the same VPS/logical/UR machinery,
// assembled from a different domain description, answers a different
// market's questions.
package main

import (
	"fmt"
	"log"

	"webbase"
)

func main() {
	world := webbase.NewApartmentWorld()
	sys, err := webbase.NewApartments(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The apartment hunter's universal relation:")
	for _, a := range sys.UR.Hierarchy.AllAttrs() {
		fmt.Println("  " + a)
	}

	query := "SELECT Neighborhood, Bedrooms, Rent, MedianRent, CrimeRate, Contact " +
		"WHERE Borough = 'brooklyn' AND Bedrooms = 2 " +
		"AND Rent < MedianRent AND CrimeRate <= 5 ORDER BY Rent LIMIT 10"
	fmt.Println("\nQuery:", query)

	res, stats, err := sys.QueryString(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBelow-median two-bedrooms in safe Brooklyn neighborhoods:")
	fmt.Print(res.Relation)
	fmt.Printf("\n%d answers; %s\n", res.Relation.Len(), stats)

	// A fee-aware broker query: the planner routes it to the Brokered
	// maximal object because only brokers report fees.
	res2, _, err := sys.QueryString(
		"SELECT Neighborhood, Rent, Fee WHERE Borough = 'manhattan' AND Bedrooms = 1 ORDER BY Fee LIMIT 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLowest broker fees for Manhattan one-bedrooms:")
	fmt.Print(res2.Relation)
}
