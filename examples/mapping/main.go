// Mapping demonstrates mapping by example (Sections 4 and 7): a recorded
// browsing session through the Newsday classifieds becomes a navigation
// map; the map is translated — automatically, in linear time — into a
// Transaction F-logic navigation expression; the expression is executed to
// populate the VPS relation; and finally the map is re-checked against the
// site to detect drift.
package main

import (
	"fmt"
	"log"

	"webbase"
	"webbase/internal/mapbuilder"
	"webbase/internal/navcalc"
	"webbase/internal/navmap"
	"webbase/internal/relation"
	"webbase/internal/sites"
)

func main() {
	world := webbase.NewSimulatedWorld()

	// The recorded session: what the webbase designer's browser captured
	// while they shopped for a ford escort, plus the one thing the tool
	// cannot infer — the data-page extraction script.
	column := func(h string) navcalc.Column { return navcalc.Column{Header: h, Attr: h} }
	session := &mapbuilder.Session{
		Relation: "newsday",
		StartURL: "http://" + sites.NewsdayHost + "/",
		Schema:   relation.NewSchema("Make", "Model", "Year", "Price", "Contact"),
		Events: []mapbuilder.Event{
			{Kind: mapbuilder.EvFollow, LinkName: "Automobiles"},
			{Kind: mapbuilder.EvSubmit, FormName: "f1",
				Values: map[string]string{"make": "ford"},
				VarOf:  map[string]string{"make": "Make"}},
			{Kind: mapbuilder.EvSubmit, FormName: "f2",
				Values: map[string]string{"model": "escort"},
				VarOf:  map[string]string{"model": "Model"}},
			{Kind: mapbuilder.EvMarkData, NodeName: "carData", MoreLink: "More",
				Extract: navcalc.ExtractSpec{Columns: []navcalc.Column{
					column("Make"), column("Model"), column("Year"),
					{Header: "Price", Attr: "Price", Money: true},
					column("Contact"),
				}}},
		},
	}

	b := &mapbuilder.Builder{Fetcher: world.Server}
	m, stats, err := b.Build(session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Navigation map discovered from the browsing session:")
	fmt.Print(m)
	fmt.Println("\nAutomation statistics:")
	fmt.Println("  " + stats.String())

	expr, err := navmap.Translate(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNavigation expression derived from the map (Figure 4):")
	fmt.Println(expr)

	// Execute for a different make/model than the one browsed: the map is
	// general, not a macro replay.
	rel, info, err := expr.Execute(world.Server, map[string]string{"Make": "toyota", "Model": "camry"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Executing for toyota camry: %d ads across a %d-state path\n", rel.Len(), info.PathLength)
	fmt.Print(rel.SortBy("Year", "Price"))

	drifts, err := b.CheckMap(m, map[string]string{"Make": "ford", "Model": "escort"})
	if err != nil {
		log.Fatal(err)
	}
	if len(drifts) == 0 {
		fmt.Println("\nMaintenance check: map still matches the site.")
	} else {
		fmt.Println("\nMaintenance check found drift:")
		for _, d := range drifts {
			fmt.Println("  " + d.String())
		}
	}
}
