// Overhttp demonstrates that the webbase is indifferent to where the raw
// Web lives: the simulated sites are served over real HTTP sockets
// (net/http + virtual hosting on the Host header), and the webbase
// navigates them through an HTTP client fetcher — the same code path a
// deployment against live sites would use.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"webbase"
	"webbase/internal/web"
)

func main() {
	world := webbase.NewSimulatedWorld()

	// Serve the whole simulated Web on one real socket. The empty host
	// makes the handler dispatch on the Host header, so all twelve
	// virtual hosts share the listener.
	ts := httptest.NewServer(web.HTTPHandler(world.Server, "http", ""))
	defer ts.Close()
	fmt.Println("simulated Web listening on", ts.URL)

	// The fetcher rewrites virtual-host URLs to the real listener while
	// preserving the Host header through the URL host → request host
	// mapping. A custom transport sends every request to the test
	// listener but keeps the virtual host name.
	listener, err := url.Parse(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: &hostRewriteTransport{target: listener.Host}}
	fetcher := &web.HTTPFetcher{Client: client}

	sys, err := webbase.New(webbase.Config{Fetcher: fetcher})
	if err != nil {
		log.Fatal(err)
	}
	res, stats, err := sys.QueryString(
		"SELECT Make, Model, Year, Price WHERE Make = 'honda' AND Model = 'accord' ORDER BY Price LIMIT 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFive cheapest honda accords, fetched over real HTTP:")
	fmt.Print(res.Relation)
	fmt.Printf("\n%s\n", stats)
}

// hostRewriteTransport redirects every request to the test listener while
// keeping the original virtual host in the Host header.
type hostRewriteTransport struct {
	target string
}

func (t *hostRewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req = req.Clone(req.Context())
	req.Host = req.URL.Host // preserve the virtual host
	req.URL.Host = t.target // but connect to the real listener
	return http.DefaultTransport.RoundTrip(req)
}
