// Overhttp demonstrates that the webbase is indifferent to where the raw
// Web lives AND to where its callers live: the simulated sites are
// served over real HTTP sockets (net/http + virtual hosting on the Host
// header), the webbase navigates them through an HTTP client fetcher,
// and the answer is served back out over HTTP by the query service from
// internal/server — the same server cmd/webbased runs — as an
// incremental NDJSON stream. Real sockets on both sides of the layered
// architecture.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"webbase"
	"webbase/internal/server"
	"webbase/internal/web"
)

func main() {
	world := webbase.NewSimulatedWorld()

	// Serve the whole simulated Web on one real socket. The empty host
	// makes the handler dispatch on the Host header, so all twelve
	// virtual hosts share the listener.
	rawWeb := httptest.NewServer(web.HTTPHandler(world.Server, "http", ""))
	defer rawWeb.Close()
	fmt.Println("simulated Web listening on", rawWeb.URL)

	// The fetcher rewrites virtual-host URLs to the real listener while
	// preserving the Host header through the URL host → request host
	// mapping. A custom transport sends every request to the test
	// listener but keeps the virtual host name.
	listener, err := url.Parse(rawWeb.URL)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: &hostRewriteTransport{target: listener.Host}}
	fetcher := &web.HTTPFetcher{Client: client}

	sys, err := webbase.New(webbase.Config{Fetcher: fetcher})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the webbase itself over HTTP: the query service streams
	// answers as NDJSON, one event per maximal object.
	srv, err := server.New(server.Config{System: sys})
	if err != nil {
		log.Fatal(err)
	}
	service := httptest.NewServer(srv.Handler())
	defer service.Close()
	fmt.Println("query service listening on", service.URL)

	resp, err := http.Post(service.URL+"/query", "text/plain", strings.NewReader(
		"SELECT Make, Model, Year, Price WHERE Make = 'honda' AND Model = 'accord' ORDER BY Price LIMIT 5"))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	fmt.Println("\nFive cheapest honda accords, fetched over real HTTP, answered over real HTTP:")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		// "tuples" carries the rows in a tuples event but the total count
		// in the trailer, so decode each line generically.
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev["event"] {
		case "tuples":
			for _, t := range ev["tuples"].([]any) {
				fmt.Println(" ", t)
			}
		case "trailer":
			stats := ev["stats"].(map[string]any)
			fmt.Printf("\n%.0f pages fetched, %.0f deduped\n", stats["Pages"].(float64), stats["Deduped"].(float64))
		case "error":
			log.Fatalf("query failed: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// hostRewriteTransport redirects every request to the test listener while
// keeping the original virtual host in the Host header.
type hostRewriteTransport struct {
	target string
}

func (t *hostRewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	req = req.Clone(req.Context())
	req.Host = req.URL.Host // preserve the virtual host
	req.URL.Host = t.target // but connect to the real listener
	return http.DefaultTransport.RoundTrip(req)
}
