// Quickstart: assemble a webbase over the simulated Web and run one
// universal-relation query — no joins in sight, the system navigates the
// sites for you.
package main

import (
	"fmt"
	"log"

	"webbase"
)

func main() {
	// The built-in simulated Web: twelve deterministic car-shopping sites.
	world := webbase.NewSimulatedWorld()

	// Assemble the three-layer webbase over it.
	sys, err := webbase.New(webbase.Config{Fetcher: world.Server})
	if err != nil {
		log.Fatal(err)
	}

	// The end-user interface is the structured universal relation: name
	// the attributes you want and the conditions you have.
	res, stats, err := sys.QueryString(
		"SELECT Make, Model, Year, Price, Contact WHERE Make = 'ford' AND Model = 'escort'")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Relation.SortBy("Year", "Price"))
	fmt.Printf("\n%d ford escorts found — %s\n", res.Relation.Len(), stats)
}
